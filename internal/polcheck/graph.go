package polcheck

import (
	"fmt"
	"sort"
	"strings"

	"mkbas/internal/capdl"
	"mkbas/internal/core"
	"mkbas/internal/linuxsim"
	"mkbas/internal/sel4"
)

// NodeKind classifies an access-graph node.
type NodeKind int

// Node kinds.
const (
	// KindSubject is an active entity: a process, component, or thread
	// group.
	KindSubject NodeKind = iota + 1
	// KindChannel is an IPC conduit: an seL4 endpoint or a POSIX message
	// queue. MINIX has no channel objects — its matrix cells are direct
	// subject→subject edges.
	KindChannel
	// KindDevice is a hardware resource: a device register file or a
	// network port.
	KindDevice
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindSubject:
		return "subject"
	case KindChannel:
		return "channel"
	case KindDevice:
		return "device"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one access-graph vertex, identified by kind and name.
type Node struct {
	Kind NodeKind
	Name string
}

// Subject builds a subject node.
func Subject(name string) Node { return Node{Kind: KindSubject, Name: name} }

// Channel builds a channel node.
func Channel(name string) Node { return Node{Kind: KindChannel, Name: name} }

// Device builds a device node.
func Device(name string) Node { return Node{Kind: KindDevice, Name: name} }

func (n Node) String() string { return n.Kind.String() + ":" + n.Name }

// Edge is one directed flow grant: data may move From → To. Labels carry
// the rights justifying the edge ("mt4" for an ACM message type, "send",
// "recv", "write", "read"); Origin records provenance for reports.
type Edge struct {
	From   Node
	To     Node
	Labels []string
	Origin string
}

// KillEdge records destroy authority of one subject over another.
type KillEdge struct {
	Src    string
	Dst    string
	Origin string
}

// Graph is the unified directed access graph every policy source normalises
// into.
type Graph struct {
	// Platform labels the source formalism for reports ("minix-acm",
	// "sel4-capdl", "linux-dac").
	Platform string

	nodes map[Node]struct{}
	out   map[Node]map[Node]*Edge
	kills map[string]map[string]string // src → dst → origin
}

// NewGraph returns an empty graph for a platform.
func NewGraph(platform string) *Graph {
	return &Graph{
		Platform: platform,
		nodes:    make(map[Node]struct{}),
		out:      make(map[Node]map[Node]*Edge),
		kills:    make(map[string]map[string]string),
	}
}

// AddNode registers a node without edges (used for subjects that hold no
// authority, so lint can flag them).
func (g *Graph) AddNode(n Node) { g.nodes[n] = struct{}{} }

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n Node) bool {
	_, ok := g.nodes[n]
	return ok
}

// AddFlow adds (or merges labels into) the flow edge from → to.
func (g *Graph) AddFlow(from, to Node, labels []string, origin string) {
	g.AddNode(from)
	g.AddNode(to)
	row, ok := g.out[from]
	if !ok {
		row = make(map[Node]*Edge)
		g.out[from] = row
	}
	e, ok := row[to]
	if !ok {
		e = &Edge{From: from, To: to, Origin: origin}
		row[to] = e
	}
	e.Labels = mergeLabels(e.Labels, labels)
}

// AddKill records that src may destroy dst.
func (g *Graph) AddKill(src, dst, origin string) {
	g.AddNode(Subject(src))
	g.AddNode(Subject(dst))
	row, ok := g.kills[src]
	if !ok {
		row = make(map[string]string)
		g.kills[src] = row
	}
	if _, dup := row[dst]; !dup {
		row[dst] = origin
	}
}

// CanKill reports whether src holds destroy authority over dst, and its
// provenance.
func (g *Graph) CanKill(src, dst string) (string, bool) {
	origin, ok := g.kills[src][dst]
	return origin, ok
}

// Nodes returns every node, subjects first, then channels, then devices,
// each group sorted by name.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Subjects returns every subject name, sorted.
func (g *Graph) Subjects() []string {
	var out []string
	for n := range g.nodes {
		if n.Kind == KindSubject {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// FlowsFrom returns n's outgoing flow edges sorted by destination.
func (g *Graph) FlowsFrom(n Node) []*Edge {
	row := g.out[n]
	out := make([]*Edge, 0, len(row))
	for _, e := range row {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To.Kind != out[j].To.Kind {
			return out[i].To.Kind < out[j].To.Kind
		}
		return out[i].To.Name < out[j].To.Name
	})
	return out
}

// SendTargets returns the distinct IPC destinations a subject can reach in
// one hop: channel nodes it may send into plus subjects it may message
// directly. Devices and network ports do not count — OnlyEndpoint is a
// statement about IPC authority, the paper's "the web interface has only one
// capability, to communicate with the temperature controller process".
func (g *Graph) SendTargets(subject string) []Node {
	var out []Node
	for _, e := range g.FlowsFrom(Subject(subject)) {
		if e.To.Kind == KindChannel || e.To.Kind == KindSubject {
			out = append(out, e.To)
		}
	}
	return out
}

// KillEdges lists every destroy-authority edge, sorted.
func (g *Graph) KillEdges() []KillEdge {
	var out []KillEdge
	for src, row := range g.kills {
		for dst, origin := range row {
			out = append(out, KillEdge{Src: src, Dst: dst, Origin: origin})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// mergeLabels unions two sorted-or-not label sets into a sorted unique set.
func mergeLabels(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, set := range [2][]string{a, b} {
		for _, l := range set {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Strings(out)
	return out
}

// --- MINIX ACM ---

// FromMatrix normalises an access control matrix: every populated cell
// becomes a direct subject→subject flow edge labelled with its message
// types ("mt*" for an all-types grant).
func FromMatrix(m *core.Matrix) *Graph {
	g := NewGraph("minix-acm")
	for _, id := range m.Subjects() {
		g.AddNode(Subject(m.NameOf(id)))
	}
	for _, src := range m.Subjects() {
		for _, dst := range m.Subjects() {
			mask := m.Mask(src, dst)
			if mask == 0 {
				continue
			}
			var labels []string
			if mask == core.MaskAll {
				labels = []string{"mt*"}
			} else {
				for _, t := range mask.Types() {
					labels = append(labels, fmt.Sprintf("mt%d", t))
				}
			}
			g.AddFlow(Subject(m.NameOf(src)), Subject(m.NameOf(dst)), labels,
				fmt.Sprintf("acm cell %d->%d mask %s", src, dst, mask))
		}
	}
	return g
}

// FromPolicy is FromMatrix plus the audited-syscall surface: a subject
// granted the kill service holds destroy authority over every other subject
// (MINIX kill is not per-target).
func FromPolicy(p *core.Policy) *Graph {
	g := FromMatrix(p.IPC)
	subjects := g.Subjects()
	for _, id := range p.Syscalls.Subjects() {
		if !p.Syscalls.Rule(id, core.SysKill).Allowed {
			continue
		}
		src := p.IPC.NameOf(id)
		for _, dst := range subjects {
			if dst != src {
				g.AddKill(src, dst, fmt.Sprintf("syscall grant kill to acid %d", id))
			}
		}
	}
	return g
}

// --- seL4 CapDL ---

// CapDLSubjectOf maps a CapDL thread name to its subject. CAmkES generates
// one thread per provided interface plus a control thread, all named
// "component" or "component.iface"; collapsing on the first dot recovers
// the component, which is the unit the paper reasons about.
func CapDLSubjectOf(tcbName string) string {
	if i := strings.IndexByte(tcbName, '.'); i > 0 {
		return tcbName[:i]
	}
	return tcbName
}

// FromCapDL normalises a capability-distribution spec: endpoint write caps
// become subject→channel send edges, endpoint read caps channel→subject
// receive edges, device/netport caps flow edges to device nodes, and TCB
// write caps kill edges (TCB_Suspend is the seL4 "kill").
func FromCapDL(spec *capdl.Spec) *Graph {
	g := NewGraph("sel4-capdl")
	kinds := make(map[string]sel4.ObjKind, len(spec.Objects))
	for _, o := range spec.Objects {
		kinds[o.Name] = o.Kind
	}
	// tcbOwner maps a TCB *object* name to the subject it animates, for
	// kill-edge targets; CAmkES does not distribute TCB caps, but specs
	// under analysis may (that is the attack class being checked for).
	tcbOwner := func(objName string) string {
		return CapDLSubjectOf(strings.TrimPrefix(objName, "tcb_"))
	}
	for _, t := range spec.TCBs {
		subj := Subject(CapDLSubjectOf(t.Name))
		g.AddNode(subj)
		for _, c := range t.Caps {
			origin := fmt.Sprintf("%s slot %d (%v)", t.Name, c.Slot, c.Rights)
			switch kinds[c.Object] {
			case sel4.KindEndpoint:
				ch := Channel(c.Object)
				if c.Rights.Has(sel4.CapWrite) {
					g.AddFlow(subj, ch, []string{"send"}, origin)
				}
				if c.Rights.Has(sel4.CapRead) {
					g.AddFlow(ch, subj, []string{"recv"}, origin)
				}
			case sel4.KindNotification:
				ch := Channel(c.Object)
				if c.Rights.Has(sel4.CapWrite) {
					g.AddFlow(subj, ch, []string{"signal"}, origin)
				}
				if c.Rights.Has(sel4.CapRead) {
					g.AddFlow(ch, subj, []string{"wait"}, origin)
				}
			case sel4.KindTCB:
				if c.Rights.Has(sel4.CapWrite) {
					g.AddKill(subj.Name, tcbOwner(c.Object), origin)
				}
			case sel4.KindDevice, sel4.KindNetPort:
				dev := Device(c.Object)
				if c.Rights.Has(sel4.CapWrite) {
					g.AddFlow(subj, dev, []string{"write"}, origin)
				}
				if c.Rights.Has(sel4.CapRead) {
					g.AddFlow(dev, subj, []string{"read"}, origin)
				}
			}
		}
	}
	return g
}

// --- Linux DAC ---

// DACSubject is one process with its credentials.
type DACSubject struct {
	Name string
	UID  int
	GID  int
}

// DACObject is one DAC-guarded kernel object (message queue or device file).
type DACObject struct {
	Name     string
	OwnerUID int
	OwnerGID int
	Mode     linuxsim.Mode
}

// DACModel is the static description of a Linux deployment: who runs as
// whom, and which queues and device files exist with which permission bits.
type DACModel struct {
	Subjects []DACSubject
	Queues   []DACObject
	Devices  []DACObject
}

// FromDAC normalises a Linux DAC model by asking the kernel's own
// permission predicate (linuxsim.Allowed) the same question it answers at
// runtime, for every subject×object pair: a writable queue becomes a
// subject→channel send edge, a readable one a channel→subject receive edge.
// Kill edges follow kill(2)'s rule: same uid, or uid 0 which bypasses every
// check.
func FromDAC(model *DACModel) *Graph {
	g := NewGraph("linux-dac")
	for _, s := range model.Subjects {
		g.AddNode(Subject(s.Name))
	}
	addObj := func(o DACObject, node Node, sendLabel, recvLabel string) {
		g.AddNode(node)
		for _, s := range model.Subjects {
			origin := fmt.Sprintf("uid=%d gid=%d vs %s owner %d:%d mode %04o",
				s.UID, s.GID, o.Name, o.OwnerUID, o.OwnerGID, uint16(o.Mode))
			if linuxsim.Allowed(s.UID, s.GID, o.OwnerUID, o.OwnerGID, o.Mode, false, true) {
				g.AddFlow(Subject(s.Name), node, []string{sendLabel}, origin)
			}
			if linuxsim.Allowed(s.UID, s.GID, o.OwnerUID, o.OwnerGID, o.Mode, true, false) {
				g.AddFlow(node, Subject(s.Name), []string{recvLabel}, origin)
			}
		}
	}
	for _, q := range model.Queues {
		addObj(q, Channel(q.Name), "send", "recv")
	}
	for _, d := range model.Devices {
		addObj(d, Device(d.Name), "write", "read")
	}
	for _, src := range model.Subjects {
		for _, dst := range model.Subjects {
			if src.Name == dst.Name {
				continue
			}
			switch {
			case src.UID == 0:
				g.AddKill(src.Name, dst.Name, "uid 0 bypasses DAC")
			case src.UID == dst.UID:
				g.AddKill(src.Name, dst.Name, fmt.Sprintf("same uid %d", src.UID))
			}
		}
	}
	return g
}
