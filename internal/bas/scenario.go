package bas

import (
	"errors"
	"strconv"
	"time"

	"mkbas/internal/httpmini"
	"mkbas/internal/machine"
	"mkbas/internal/plant"
	"mkbas/internal/vnet"
)

// errNoResponse reports that the web interface never answered; the attack
// experiments use it to detect an incapacitated web process.
var errNoResponse = errors.New("bas: no HTTP response from web interface")

// machineDeviceID aliases the device ID type for terse image declarations in
// the platform bindings.
type machineDeviceID = machine.DeviceID

// WebPort is the scenario web interface's TCP port (the paper's 8080).
const WebPort vnet.Port = 8080

// Process image names, shared across platforms so experiments can address
// processes uniformly.
const (
	NameTempControl  = "tempProc"
	NameTempSensor   = "tempSensProc"
	NameHeaterAct    = "heaterActProc"
	NameAlarmAct     = "alarmProc"
	NameWebInterface = "webInterface"
	NameScenario     = "scenario"
	NameSupervisor   = "supervisord"
)

// ScenarioConfig bundles everything the testbed needs.
type ScenarioConfig struct {
	// Controller is the control-law configuration.
	Controller ControllerConfig
	// SamplePeriod is the sensor driver's polling interval.
	SamplePeriod time.Duration
	// Plant parameterises the simulated room.
	Plant plant.Config
	// Seed drives board-level determinism (sensor noise).
	Seed int64
}

// DefaultScenario mirrors the testbed: a cool room (18 °C) that the
// controller must heat to a 22 °C setpoint, sampling once a second.
func DefaultScenario() ScenarioConfig {
	return ScenarioConfig{
		Controller:   DefaultControllerConfig(),
		SamplePeriod: time.Second,
		Plant:        plant.DefaultConfig(),
		Seed:         1,
	}
}

// Testbed is the assembled physical side of an experiment: board, room,
// network. Platform deployments run on top of one testbed.
type Testbed struct {
	Machine *machine.Machine
	Room    *plant.Room
	Net     *vnet.Stack
}

// NewTestbed assembles a board with the room devices attached and a network
// stack.
func NewTestbed(cfg ScenarioConfig) *Testbed {
	m := machine.New(machine.Config{Seed: cfg.Seed})
	roomCfg := cfg.Plant
	if roomCfg.SensorNoise > 0 && roomCfg.Rand == nil {
		roomCfg.Rand = m.Rand()
	}
	room := plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), roomCfg))
	return &Testbed{
		Machine: m,
		Room:    room,
		Net:     vnet.NewStack(),
	}
}

// HTTPGet issues one HTTP request from the host side against the deployed
// web interface and runs the board until the response arrives (or timeout of
// virtual time elapses). It is the experiment harness's "administrator's
// browser".
func (tb *Testbed) HTTPGet(path string) (int, string, error) {
	return tb.httpRoundTrip("GET " + path + " HTTP/1.0\r\n\r\n")
}

// HTTPPostSetpoint posts a new setpoint value.
func (tb *Testbed) HTTPPostSetpoint(value string) (int, string, error) {
	body := "value=" + value
	req := "POST /setpoint HTTP/1.0\r\n" +
		"Content-Type: application/x-www-form-urlencoded\r\n" +
		"Content-Length: " + itoa(len(body)) + "\r\n\r\n" + body
	return tb.httpRoundTrip(req)
}

func (tb *Testbed) httpRoundTrip(raw string) (int, string, error) {
	conn, err := tb.Net.Dial(WebPort)
	if err != nil {
		return 0, "", err
	}
	if err := conn.Write([]byte(raw)); err != nil {
		return 0, "", err
	}
	// Drive the board until the web process answers. On Linux the
	// controller only polls its web-request queue after each sensor sample,
	// so a reply can lag by a full sample period; allow several seconds of
	// virtual time.
	var buf []byte
	for i := 0; i < 80; i++ {
		tb.Machine.Run(50 * time.Millisecond)
		buf = append(buf, conn.ReadAll()...)
		if status, body, err := parseResponse(buf); err == nil {
			conn.Close()
			return status, body, nil
		}
	}
	conn.Close()
	return 0, string(buf), errNoResponse
}

func itoa(n int) string { return strconv.Itoa(n) }

// parseResponse wraps httpmini.ParseResponse with a string body.
func parseResponse(buf []byte) (int, string, error) {
	status, body, err := httpmini.ParseResponse(buf)
	return status, string(body), err
}
