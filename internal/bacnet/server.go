package bacnet

// PropertyStore is the device side of the protocol: the controller (or a
// test double) exposing its points.
type PropertyStore interface {
	// ReadProperty returns a point's present value.
	ReadProperty(obj ObjectID) (float64, uint8)
	// WriteProperty sets a point's present value, returning 0 or an error
	// code.
	WriteProperty(obj ObjectID, value float64) uint8
}

// Server answers legacy (unauthenticated) BACnet requests against a store.
// It is deliberately exactly as trusting as the protocols the paper
// criticises.
type Server struct {
	deviceID uint32
	store    PropertyStore
}

// NewServer builds a legacy server for one device.
func NewServer(deviceID uint32, store PropertyStore) *Server {
	return &Server{deviceID: deviceID, store: store}
}

// Handle processes one request PDU and returns the response PDU.
func (s *Server) Handle(req PDU) PDU {
	resp := PDU{InvokeID: req.InvokeID, Device: s.deviceID, Object: req.Object}
	if req.Device != s.deviceID {
		resp.Type = ErrorPDU
		resp.Code = CodeBadRequest
		return resp
	}
	switch req.Type {
	case ReadProperty:
		value, code := s.store.ReadProperty(req.Object)
		if code != 0 {
			resp.Type = ErrorPDU
			resp.Code = code
			return resp
		}
		resp.Type = Ack
		resp.Value = value
	case WriteProperty:
		if code := s.store.WriteProperty(req.Object, req.Value); code != 0 {
			resp.Type = ErrorPDU
			resp.Code = code
			return resp
		}
		resp.Type = Ack
		resp.Value = req.Value
	default:
		resp.Type = ErrorPDU
		resp.Code = CodeBadRequest
	}
	return resp
}

// HandleFrame processes one raw request frame and returns the raw response.
func (s *Server) HandleFrame(frame []byte) []byte {
	req, err := DecodePDU(frame)
	if err != nil {
		return PDU{Type: ErrorPDU, Code: CodeBadRequest, Device: s.deviceID}.Encode()
	}
	return s.Handle(req).Encode()
}
