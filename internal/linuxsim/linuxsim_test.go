package linuxsim

import (
	"errors"
	"testing"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/plant"
)

func newBoard(t *testing.T) (*machine.Machine, *Kernel) {
	t.Helper()
	m := machine.New(machine.Config{})
	k := Boot(m, Config{})
	t.Cleanup(m.Shutdown)
	return m, k
}

func TestMQSendReceiveSameUID(t *testing.T) {
	m, k := newBoard(t)
	var got MQMsg
	k.RegisterImage(Image{Name: "producer", UID: 1000, Priority: 7, Body: func(api *API) {
		fd, err := api.MQOpen("/q", MQOpenFlags{Create: true, Write: true, Mode: 0o600})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := api.MQSend(fd, []byte("data"), 3); err != nil {
			t.Errorf("send: %v", err)
		}
	}})
	k.RegisterImage(Image{Name: "consumer", UID: 1000, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		fd, err := api.MQOpen("/q", MQOpenFlags{Read: true})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		got, err = api.MQReceive(fd)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
	}})
	if _, err := k.SpawnImage("producer"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnImage("consumer"); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if string(got.Data) != "data" || got.Prio != 3 {
		t.Fatalf("got %q prio %d", got.Data, got.Prio)
	}
}

func TestMQPriorityOrdering(t *testing.T) {
	m, k := newBoard(t)
	var order []string
	k.RegisterImage(Image{Name: "p", UID: 1, Priority: 7, Body: func(api *API) {
		fd, _ := api.MQOpen("/q", MQOpenFlags{Create: true, Read: true, Write: true, Mode: 0o600})
		api.MQSend(fd, []byte("low1"), 1)
		api.MQSend(fd, []byte("high"), 9)
		api.MQSend(fd, []byte("low2"), 1)
		for i := 0; i < 3; i++ {
			msg, err := api.MQReceive(fd)
			if err == nil {
				order = append(order, string(msg.Data))
			}
		}
	}})
	k.SpawnImage("p")
	m.Run(time.Second)
	want := []string{"high", "low1", "low2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDACDeniesOtherUser(t *testing.T) {
	m, k := newBoard(t)
	var openErr error
	k.RegisterImage(Image{Name: "owner", UID: 1000, Priority: 7, Body: func(api *API) {
		if _, err := api.MQOpen("/private", MQOpenFlags{Create: true, Read: true, Write: true, Mode: 0o600}); err != nil {
			t.Errorf("owner open: %v", err)
		}
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "outsider", UID: 2000, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		_, openErr = api.MQOpen("/private", MQOpenFlags{Write: true})
	}})
	k.SpawnImage("owner")
	k.SpawnImage("outsider")
	m.Run(time.Second)
	if !errors.Is(openErr, ErrPerm) {
		t.Fatalf("outsider err = %v, want ErrPerm", openErr)
	}
	if k.Stats().DACDenied == 0 {
		t.Fatal("DAC denial not counted")
	}
}

func TestSameUIDCanSpoofAnyQueue(t *testing.T) {
	// The paper's first Linux attack: all five processes share one user
	// account, so the web process can write every queue.
	m, k := newBoard(t)
	var spoofed MQMsg
	k.RegisterImage(Image{Name: "sensor-owner", UID: 1000, Priority: 7, Body: func(api *API) {
		fd, _ := api.MQOpen("/sensor-data", MQOpenFlags{Create: true, Read: true, Mode: 0o600})
		msg, err := api.MQReceive(fd)
		if err == nil {
			spoofed = msg
		}
	}})
	k.RegisterImage(Image{Name: "web-attacker", UID: 1000, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		fd, err := api.MQOpen("/sensor-data", MQOpenFlags{Write: true})
		if err != nil {
			t.Errorf("attacker open failed: %v", err)
			return
		}
		api.MQSend(fd, []byte("fake-temp=99"), 0)
	}})
	k.SpawnImage("sensor-owner")
	k.SpawnImage("web-attacker")
	m.Run(time.Second)
	if string(spoofed.Data) != "fake-temp=99" {
		t.Fatalf("spoof failed: %q (same-uid DAC should allow it)", spoofed.Data)
	}
}

func TestRootBypassesDAC(t *testing.T) {
	m, k := newBoard(t)
	var openErr error
	k.RegisterImage(Image{Name: "owner", UID: 1000, Priority: 7, Body: func(api *API) {
		api.MQOpen("/locked", MQOpenFlags{Create: true, Read: true, Write: true, Mode: 0o600})
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "rootproc", UID: 0, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		_, openErr = api.MQOpen("/locked", MQOpenFlags{Read: true, Write: true})
	}})
	k.SpawnImage("owner")
	k.SpawnImage("rootproc")
	m.Run(time.Second)
	if openErr != nil {
		t.Fatalf("root open err = %v, want success", openErr)
	}
}

func TestKillSameUIDAndRoot(t *testing.T) {
	m, k := newBoard(t)
	k.RegisterImage(Image{Name: "victim-same", UID: 1000, Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "victim-other", UID: 3000, Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	var killSame, killOther error
	var samePID, otherPID int
	k.RegisterImage(Image{Name: "killer", UID: 1000, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		killSame = api.Kill(samePID, SIGKILL)
		killOther = api.Kill(otherPID, SIGKILL)
	}})
	var err error
	samePID, err = k.SpawnImage("victim-same")
	if err != nil {
		t.Fatal(err)
	}
	otherPID, err = k.SpawnImage("victim-other")
	if err != nil {
		t.Fatal(err)
	}
	k.SpawnImage("killer")
	m.Run(time.Second)
	if killSame != nil {
		t.Fatalf("same-uid kill err = %v, want success", killSame)
	}
	if !errors.Is(killOther, ErrPerm) {
		t.Fatalf("cross-uid kill err = %v, want ErrPerm", killOther)
	}
	if k.Alive(samePID) {
		t.Fatal("same-uid victim survived")
	}
	if !k.Alive(otherPID) {
		t.Fatal("cross-uid victim died despite EPERM")
	}
}

func TestGrantRootThenKillAnyone(t *testing.T) {
	m, k := newBoard(t)
	k.RegisterImage(Image{Name: "controller", UID: 500, Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	var killErr error
	var controllerPID int
	k.RegisterImage(Image{Name: "web", UID: 1000, Priority: 8, Body: func(api *API) {
		api.Sleep(20 * time.Millisecond) // escalation happens at t=10ms
		killErr = api.Kill(controllerPID, SIGKILL)
	}})
	var err error
	controllerPID, err = k.SpawnImage("controller")
	if err != nil {
		t.Fatal(err)
	}
	webPID, err := k.SpawnImage("web")
	if err != nil {
		t.Fatal(err)
	}
	m.Clock().After(10*time.Millisecond, func() {
		if err := k.GrantRoot(webPID); err != nil {
			t.Errorf("GrantRoot: %v", err)
		}
	})
	m.Run(time.Second)
	if killErr != nil {
		t.Fatalf("root kill err = %v, want success", killErr)
	}
	if k.Alive(controllerPID) {
		t.Fatal("controller survived root kill")
	}
}

func TestMQBlockingReceiveAndSend(t *testing.T) {
	m, k := newBoard(t)
	var got []string
	k.RegisterImage(Image{Name: "rx", UID: 1, Priority: 7, Body: func(api *API) {
		fd, _ := api.MQOpen("/q", MQOpenFlags{Create: true, Read: true, Mode: 0o600, MaxMsgs: 1})
		for i := 0; i < 3; i++ {
			msg, err := api.MQReceive(fd) // blocks until tx sends
			if err == nil {
				got = append(got, string(msg.Data))
			}
		}
	}})
	k.RegisterImage(Image{Name: "tx", UID: 1, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		fd, _ := api.MQOpen("/q", MQOpenFlags{Write: true})
		for _, s := range []string{"a", "b", "c"} {
			if err := api.MQSend(fd, []byte(s), 0); err != nil {
				t.Errorf("send %s: %v", s, err)
			}
		}
	}})
	k.SpawnImage("rx")
	k.SpawnImage("tx")
	m.Run(time.Second)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestMQSendBlocksWhenFull(t *testing.T) {
	m, k := newBoard(t)
	var nbErr error
	sendCompleted := false
	k.RegisterImage(Image{Name: "tx", UID: 1, Priority: 7, Body: func(api *API) {
		fd, _ := api.MQOpen("/q", MQOpenFlags{Create: true, Read: true, Write: true, Mode: 0o600, MaxMsgs: 1})
		api.MQSend(fd, []byte("fill"), 0)
		nbfd, _ := api.MQOpen("/q", MQOpenFlags{Write: true, NonBlock: true})
		nbErr = api.MQSend(nbfd, []byte("nb"), 0) // EAGAIN
		api.MQSend(fd, []byte("second"), 0)       // blocks until reader drains
		sendCompleted = true
	}})
	k.RegisterImage(Image{Name: "rx", UID: 1, Priority: 8, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond)
		fd, _ := api.MQOpen("/q", MQOpenFlags{Read: true})
		api.MQReceive(fd)
		api.MQReceive(fd)
	}})
	k.SpawnImage("tx")
	k.SpawnImage("rx")
	m.Run(time.Second)
	if !errors.Is(nbErr, ErrAgain) {
		t.Fatalf("nonblocking send err = %v, want ErrAgain", nbErr)
	}
	if !sendCompleted {
		t.Fatal("blocked sender never completed")
	}
}

func TestMQUnlinkPermissionsAndWakeups(t *testing.T) {
	m, k := newBoard(t)
	var outsiderErr, readerErr error
	k.RegisterImage(Image{Name: "owner", UID: 1000, Priority: 7, Body: func(api *API) {
		fd, _ := api.MQOpen("/q", MQOpenFlags{Create: true, Read: true, Mode: 0o644})
		_, readerErr = api.MQReceive(fd) // blocks; woken by unlink
	}})
	k.RegisterImage(Image{Name: "outsider", UID: 2000, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		outsiderErr = api.MQUnlink("/q")
	}})
	k.RegisterImage(Image{Name: "owner2", UID: 1000, Priority: 8, Body: func(api *API) {
		api.Sleep(2 * time.Millisecond)
		if err := api.MQUnlink("/q"); err != nil {
			t.Errorf("owner unlink: %v", err)
		}
	}})
	k.SpawnImage("owner")
	k.SpawnImage("outsider")
	k.SpawnImage("owner2")
	m.Run(time.Second)
	if !errors.Is(outsiderErr, ErrPerm) {
		t.Fatalf("outsider unlink err = %v, want ErrPerm", outsiderErr)
	}
	if !errors.Is(readerErr, ErrNoEnt) {
		t.Fatalf("blocked reader err = %v, want ErrNoEnt after unlink", readerErr)
	}
}

func TestDeviceFileDAC(t *testing.T) {
	m := machine.New(machine.Config{})
	plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), plant.DefaultConfig()))
	k := Boot(m, Config{})
	t.Cleanup(m.Shutdown)
	k.RegisterDeviceFile(plant.DevHeater, 500, 500, 0o600)

	var ownErr, otherErr, rootErr error
	k.RegisterImage(Image{Name: "driver", UID: 500, Priority: 7, Body: func(api *API) {
		ownErr = api.DevWrite(plant.DevHeater, plant.RegActuate, 1)
	}})
	k.RegisterImage(Image{Name: "web", UID: 1000, Priority: 7, Body: func(api *API) {
		otherErr = api.DevWrite(plant.DevHeater, plant.RegActuate, 1)
	}})
	k.RegisterImage(Image{Name: "rootweb", UID: 0, Priority: 7, Body: func(api *API) {
		rootErr = api.DevWrite(plant.DevHeater, plant.RegActuate, 0)
	}})
	k.SpawnImage("driver")
	k.SpawnImage("web")
	k.SpawnImage("rootweb")
	m.Run(time.Second)
	if ownErr != nil {
		t.Fatalf("owner write: %v", ownErr)
	}
	if !errors.Is(otherErr, ErrPerm) {
		t.Fatalf("other write err = %v, want ErrPerm", otherErr)
	}
	if rootErr != nil {
		t.Fatalf("root write: %v (root must bypass DAC)", rootErr)
	}
}

func TestForkInheritsCredentials(t *testing.T) {
	m, k := newBoard(t)
	var childUID int
	k.RegisterImage(Image{Name: "child", UID: 9999, Priority: 7, Body: func(api *API) {
		childUID = api.GetUID()
	}})
	k.RegisterImage(Image{Name: "parent", UID: 42, Priority: 7, Body: func(api *API) {
		if _, err := api.Fork("child"); err != nil {
			t.Errorf("fork: %v", err)
		}
	}})
	k.SpawnImage("parent")
	m.Run(time.Second)
	if childUID != 42 {
		t.Fatalf("child uid = %d, want inherited 42 (image UID must be ignored)", childUID)
	}
}

func TestForkBombIsUnbounded(t *testing.T) {
	// Linux has no fork quota surface: 100 forks all succeed. (Contrast
	// with TestPMForkQuotaStopsForkBomb in internal/minix.)
	m, k := newBoard(t)
	granted := 0
	k.RegisterImage(Image{Name: "drone", UID: 1000, Priority: 9, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "bomber", UID: 1000, Priority: 7, Body: func(api *API) {
		for i := 0; i < 100; i++ {
			if _, err := api.Fork("drone"); err == nil {
				granted++
			}
		}
	}})
	k.SpawnImage("bomber")
	m.Run(time.Second)
	if granted != 100 {
		t.Fatalf("granted = %d, want 100 (no quota on Linux)", granted)
	}
}

func TestExclusiveCreate(t *testing.T) {
	m, k := newBoard(t)
	var exclErr error
	k.RegisterImage(Image{Name: "p", UID: 1, Priority: 7, Body: func(api *API) {
		if _, err := api.MQOpen("/q", MQOpenFlags{Create: true, Excl: true, Read: true, Mode: 0o600}); err != nil {
			t.Errorf("first excl create: %v", err)
		}
		_, exclErr = api.MQOpen("/q", MQOpenFlags{Create: true, Excl: true, Read: true, Mode: 0o600})
	}})
	k.SpawnImage("p")
	m.Run(time.Second)
	if !errors.Is(exclErr, ErrExist) {
		t.Fatalf("second excl create err = %v, want ErrExist", exclErr)
	}
}

func TestOpenMissingQueueFails(t *testing.T) {
	m, k := newBoard(t)
	var err error
	k.RegisterImage(Image{Name: "p", UID: 1, Priority: 7, Body: func(api *API) {
		_, err = api.MQOpen("/ghost", MQOpenFlags{Read: true})
	}})
	k.SpawnImage("p")
	m.Run(time.Second)
	if !errors.Is(err, ErrNoEnt) {
		t.Fatalf("err = %v, want ErrNoEnt", err)
	}
}

func TestNonTerminatingSignalAbsorbed(t *testing.T) {
	m, k := newBoard(t)
	k.RegisterImage(Image{Name: "victim", UID: 1, Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	var killErr error
	var victimPID int
	k.RegisterImage(Image{Name: "sender", UID: 1, Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		killErr = api.Kill(victimPID, 10) // SIGUSR1-ish
	}})
	var err error
	victimPID, err = k.SpawnImage("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.SpawnImage("sender")
	m.Run(time.Second)
	if killErr != nil {
		t.Fatalf("signal err = %v", killErr)
	}
	if !k.Alive(victimPID) {
		t.Fatal("victim died from non-terminating signal")
	}
}
