package machine

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since boot.
//
// Virtual time is entirely decoupled from wall-clock time: it advances only
// when the Engine charges cycle costs or fast-forwards an idle board to the
// next timer. This makes every simulation deterministic.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to the duration elapsed since boot.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since boot, e.g. "2m30s".
func (t Time) String() string { return time.Duration(t).String() }

// timer is a pending callback on the virtual clock. Fired and canceled
// timers return to the clock's free list, so steady-state scheduling (a
// sensor sleeping every tick) allocates nothing; gen guards a recycled
// timer against stale TimerIDs.
type timer struct {
	at  Time
	seq uint64 // tie-breaker so equal deadlines fire in scheduling order
	fn  func()
	gen uint64

	canceled bool
}

// TimerID identifies a scheduled callback so it can be canceled. The zero
// TimerID is inert.
type TimerID struct {
	t   *timer
	gen uint64
}

// Clock is the virtual time source for one board.
//
// All methods must be called from the engine loop (or while the engine is
// parked between Run calls); the Clock is intentionally not safe for
// concurrent use, because concurrency would destroy determinism.
//
// The timer queue is a hand-rolled binary min-heap over (deadline, seq)
// rather than container/heap: the interface indirection and any-boxing of
// the stdlib adapter are measurable at this call rate (the engine checks the
// queue on every trap).
type Clock struct {
	now    Time
	seq    uint64
	timers []*timer
	free   []*timer
}

// NewClock returns a clock at instant zero with no pending timers.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// At schedules fn to run at instant at. Deadlines in the past fire at the
// next opportunity. Timers with equal deadlines fire in scheduling order.
func (c *Clock) At(at Time, fn func()) TimerID {
	if fn == nil {
		panic("machine: Clock.At with nil callback")
	}
	var t *timer
	if n := len(c.free); n > 0 {
		t = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		t.at, t.seq, t.fn, t.canceled = at, c.seq, fn, false
	} else {
		t = &timer{at: at, seq: c.seq, fn: fn}
	}
	c.seq++
	c.push(t)
	return TimerID{t: t, gen: t.gen}
}

// After schedules fn to run d after the current instant.
func (c *Clock) After(d time.Duration, fn func()) TimerID {
	return c.At(c.now.Add(d), fn)
}

// Cancel prevents a scheduled callback from firing. Canceling an already
// fired or already canceled timer is a no-op (the generation check makes
// this safe even after the timer struct has been recycled).
func (c *Clock) Cancel(id TimerID) {
	if id.t != nil && id.t.gen == id.gen {
		id.t.canceled = true
	}
}

// PendingTimers reports the number of live (not canceled) timers.
func (c *Clock) PendingTimers() int {
	n := 0
	for _, t := range c.timers {
		if !t.canceled {
			n++
		}
	}
	return n
}

// nextDeadline returns the earliest live timer deadline, or ok=false if none.
func (c *Clock) nextDeadline() (Time, bool) {
	for len(c.timers) > 0 {
		if c.timers[0].canceled {
			c.recycle(c.popTop())
		} else {
			return c.timers[0].at, true
		}
	}
	return 0, false
}

// advance moves the clock forward to instant at without firing timers; the
// engine fires due timers itself so that firing interleaves deterministically
// with scheduling. Moving backwards is a programming error.
func (c *Clock) advance(at Time) {
	if at < c.now {
		panic(fmt.Sprintf("machine: clock moving backwards: %v -> %v", c.now, at))
	}
	c.now = at
}

// hasDue reports whether a timer is due at or before the current instant —
// the allocation-free fast path the engine checks on every trap. A canceled
// timer at the head counts as due; popDue disposes of it.
func (c *Clock) hasDue() bool {
	return len(c.timers) > 0 && c.timers[0].at <= c.now
}

// popDue removes and returns the earliest live timer due at or before the
// current instant, or nil if none are due. The caller runs t.fn and must
// then return the timer with recycle.
func (c *Clock) popDue() *timer {
	for len(c.timers) > 0 {
		top := c.timers[0]
		if top.canceled {
			c.recycle(c.popTop())
			continue
		}
		if top.at > c.now {
			return nil
		}
		return c.popTop()
	}
	return nil
}

// recycle returns a popped timer to the free list for reuse by At. Bumping
// the generation invalidates any TimerID still pointing at it.
func (c *Clock) recycle(t *timer) {
	t.fn = nil
	t.gen++
	c.free = append(c.free, t)
}

// less orders timers by (deadline, sequence).
func (c *Clock) less(i, j int) bool {
	if c.timers[i].at != c.timers[j].at {
		return c.timers[i].at < c.timers[j].at
	}
	return c.timers[i].seq < c.timers[j].seq
}

// push inserts t into the heap.
func (c *Clock) push(t *timer) {
	c.timers = append(c.timers, t)
	i := len(c.timers) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.timers[i], c.timers[parent] = c.timers[parent], c.timers[i]
		i = parent
	}
}

// popTop removes and returns the heap head.
func (c *Clock) popTop() *timer {
	h := c.timers
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	c.timers = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && c.less(r, l) {
			child = r
		}
		if !c.less(child, i) {
			break
		}
		c.timers[i], c.timers[child] = c.timers[child], c.timers[i]
		i = child
	}
	return top
}
