package attack

import (
	"math"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/camkes"
	"mkbas/internal/sel4"
)

// sel4AttackBody builds the compromised web component for one action.
func sel4AttackBody(action Action, prog *progress) func(rt *camkes.Runtime) {
	return func(rt *camkes.Runtime) {
		rt.Sleep(settleTime)
		rt.Trace("attack", "web interface compromised, starting "+string(action))
		switch action {
		case ActionSpoofSensor:
			sel4SpoofSensor(rt, prog)
		case ActionCommandActuators:
			sel4CommandActuators(rt, prog)
		case ActionKillController:
			sel4KillController(rt, prog)
		case ActionEnumerate:
			sel4Enumerate(rt, prog)
		case ActionForkBomb:
			// CAmkES components have no process-creation interface at all;
			// there is nothing to even attempt.
			prog.note("fork bomb impossible: no process-creation authority in the component's capability set")
			prog.attempts++
			prog.denials++
		}
		for {
			rt.Sleep(time.Hour)
		}
	}
}

// sel4SpoofSensor tries to deliver fake sensor samples. The attacker's only
// endpoint capability reaches the mgmt interface, whose handler does not
// accept samples; reaching the sensor interface requires a capability that
// was never distributed, so raw sends across the slot space all fail.
func sel4SpoofSensor(rt *camkes.Runtime, prog *progress) {
	api := rt.API()
	fake := sel4.Msg{Label: 1} // methodSample
	fake.Words[0] = math.Float64bits(23.0)

	end := rt.Now().Add(attackTime)
	for rt.Now() < end {
		// Through the legitimate channel: the mgmt handler rejects the
		// sample method.
		_, err := rt.Call(bas.IfaceMgmt, 99 /* not a mgmt method */, fake.Words[0])
		prog.tally(err)
		// Around the legitimate channel: probe slots for a sensor endpoint.
		for slot := sel4.CPtr(0); slot < 32; slot++ {
			if sendErr := api.NBSend(slot, fake); sendErr == nil {
				// Only the mgmt cap accepts a send, and the mgmt handler
				// ignores the sample — check whether that ever counts as a
				// success is the monitor's job. Count the acceptance.
				prog.attempts++
				prog.successes++
				prog.note("slot %d accepted a send", slot)
			} else {
				prog.tally(sendErr)
			}
		}
		rt.Sleep(time.Minute)
	}
}

// sel4CommandActuators tries to command the heater/alarm drivers, which the
// web component holds no capabilities for.
func sel4CommandActuators(rt *camkes.Runtime, prog *progress) {
	api := rt.API()
	off := sel4.Msg{Label: 1} // methodActuate, args[0]=0 (off)
	end := rt.Now().Add(attackTime)
	for rt.Now() < end {
		for slot := sel4.CPtr(0); slot < sel4.CSpaceSize; slot++ {
			if mgmtSlot, ok := rt.UsesSlot(bas.IfaceMgmt); ok && slot == mgmtSlot {
				continue // skip the legitimate channel; it is not a driver
			}
			sendErr := api.NBSend(slot, off)
			prog.tally(sendErr)
		}
		rt.Sleep(5 * time.Minute)
	}
}

// sel4KillController attempts TCB_Suspend on every slot: without a TCB
// capability it is all invalid-capability errors.
func sel4KillController(rt *camkes.Runtime, prog *progress) {
	api := rt.API()
	end := rt.Now().Add(attackTime)
	for rt.Now() < end {
		for slot := sel4.CPtr(0); slot < sel4.CSpaceSize; slot++ {
			susErr := api.TCBSuspend(slot)
			prog.tally(susErr)
		}
		rt.Sleep(5 * time.Minute)
	}
}

// sel4Enumerate is the paper's brute-force experiment: scan every slot with
// every relevant invocation and count what is usable.
func sel4Enumerate(rt *camkes.Runtime, prog *progress) {
	api := rt.API()
	usable := 0
	for slot := sel4.CPtr(0); slot < sel4.CSpaceSize; slot++ {
		any := false
		if err := api.NBSend(slot, sel4.Msg{Label: 0}); err == nil {
			any = true
		}
		if _, err := api.NBRecv(slot); err == nil || err == sel4.ErrWouldBlock {
			if err == sel4.ErrWouldBlock {
				// A would-block means the cap is real and readable.
				any = true
			}
		}
		if err := api.TCBSuspend(slot); err == nil {
			any = true
		}
		if _, err := api.NetListen(slot); err == nil {
			any = true
		}
		prog.attempts++
		if any {
			usable++
			prog.successes++
			prog.note("slot %d is usable", slot)
		} else {
			prog.denials++
		}
	}
	prog.note("brute force complete: %d usable slots out of %d", usable, sel4.CSpaceSize)
}
