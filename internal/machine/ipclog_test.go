package machine

import (
	"reflect"
	"testing"
)

func TestIPCLogAggregation(t *testing.T) {
	l := NewIPCLog()
	if l.Len() != 0 || l.Used("a", "b", "mt1") {
		t.Fatal("fresh log must be empty")
	}
	l.Record("a", "b", "mt1")
	l.Record("a", "b", "mt1")
	l.Record("a", "b", "mt2")
	l.Record("z", "a", "send")

	if got := l.Count("a", "b", "mt1"); got != 2 {
		t.Errorf("Count(a,b,mt1) = %d, want 2", got)
	}
	if !l.Used("a", "b", "mt2") || l.Used("b", "a", "mt1") {
		t.Error("Used should reflect exactly the recorded direction")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3 distinct rows", l.Len())
	}

	want := []IPCUsageCount{
		{IPCUsage{"a", "b", "mt1"}, 2},
		{IPCUsage{"a", "b", "mt2"}, 1},
		{IPCUsage{"z", "a", "send"}, 1},
	}
	if got := l.Usages(); !reflect.DeepEqual(got, want) {
		t.Errorf("Usages = %+v, want %+v", got, want)
	}
}

func TestMachineHasIPCLog(t *testing.T) {
	m := New(Config{})
	defer m.Shutdown()
	m.IPC().Record("x", "y", "send")
	if !m.IPC().Used("x", "y", "send") {
		t.Fatal("machine's IPC log should retain recordings")
	}
}
