package bas

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/camkes"
	"mkbas/internal/capdl"
	"mkbas/internal/plant"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"
)

// CAmkES interface names and RPC method numbers for the scenario assembly.
// The assembly mirrors the AADL model: the web interface's ONLY connection
// is mgmt on the controller ("the web interface has only one capability, to
// communicate with the temperature controller process").
const (
	IfaceSensorIn = "sensor" // provided by controller, used by sensor driver
	IfaceMgmt     = "mgmt"   // provided by controller, used by web interface
	IfaceCmd      = "cmd"    // provided by each actuator driver

	methodSample      uint64 = 1
	methodStatus      uint64 = 1
	methodSetSetpoint uint64 = 2
	methodActuate     uint64 = 1

	rpcCodeRange uint64 = 2
)

// Sel4Options configures DeploySel4.
type Sel4Options struct {
	// WebRun replaces the legitimate web interface's control thread with
	// attacker code.
	WebRun func(rt *camkes.Runtime)
	// SkipPolicyCheck disables the pre-deploy static policy gate over the
	// generated CapDL spec; see DeployOptions.SkipPolicyCheck for the
	// shared semantics.
	SkipPolicyCheck bool
}

// Sel4Deployment is the booted seL4/CAmkES platform.
type Sel4Deployment struct {
	deploymentBase
	System  *camkes.System
	Testbed *Testbed
}

var _ Deployment = (*Sel4Deployment)(nil)

// ControllerAlive reports whether both controller interface threads (sensor
// intake and management) are still running.
func (d *Sel4Deployment) ControllerAlive() bool {
	sensorTCB, okS := d.System.TCB(NameTempControl + "." + IfaceSensorIn)
	mgmtTCB, okM := d.System.TCB(NameTempControl + "." + IfaceMgmt)
	return okS && okM &&
		d.System.Kernel().ThreadAlive(sensorTCB) &&
		d.System.Kernel().ThreadAlive(mgmtTCB)
}

// ScenarioAssembly builds the CAmkES assembly for the Fig. 2 scenario. It is
// exported so the AADL→CAmkES compiler tests can compare their generated
// assembly against the hand-written one, as the authors did while their
// source-to-source compiler was in development.
func ScenarioAssembly(cfg ScenarioConfig, webRun func(rt *camkes.Runtime)) *camkes.Assembly {
	ctrl := NewController(cfg.Controller)

	controller := &camkes.Component{
		Name:     NameTempControl,
		Priority: 5,
		Uses:     []string{"heater", "alarm"},
		Provides: map[string]camkes.Handler{
			IfaceSensorIn: func(rt *camkes.Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				if method != methodSample {
					return nil, errors.New("bas: unknown sensor method")
				}
				temp := math.Float64frombits(args[0])
				heaterChanged, alarmChanged := ctrl.OnSample(rt.Now(), temp)
				if heaterChanged {
					sel4Actuate(rt, "heater", ctrl.HeaterOn())
				}
				if alarmChanged {
					sel4Actuate(rt, "alarm", ctrl.AlarmOn())
				}
				if ctrl.Snapshot().Samples%60 == 0 || heaterChanged || alarmChanged {
					rt.Trace("bas", ctrl.Snapshot().String())
				}
				return nil, nil
			},
			IfaceMgmt: func(rt *camkes.Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				switch method {
				case methodStatus:
					st := ctrl.Snapshot()
					var flags uint64
					if st.HeaterOn {
						flags |= statusFlagHeater
					}
					if st.AlarmOn {
						flags |= statusFlagAlarm
					}
					return []uint64{
						math.Float64bits(st.Temp),
						math.Float64bits(st.Setpoint),
						flags,
						uint64(st.Samples),
					}, nil
				case methodSetSetpoint:
					if err := ctrl.SetSetpoint(math.Float64frombits(args[0])); err != nil {
						return nil, &camkes.RPCError{Iface: IfaceMgmt, Code: rpcCodeRange}
					}
					return nil, nil
				default:
					return nil, errors.New("bas: unknown mgmt method")
				}
			},
		},
	}
	// The control thread is the staleness watchdog: CAmkES gives every
	// thread of a component the component's full capability set, so the
	// ticker can push failsafe commands through the same heater/alarm
	// connections the sensor handler uses.
	if window := cfg.Controller.StalenessWindow; window > 0 {
		controller.Run = func(rt *camkes.Runtime) {
			for {
				rt.Sleep(window / 2)
				heaterChanged, alarmChanged := ctrl.OnTick(rt.Now())
				if heaterChanged || alarmChanged {
					rt.Trace("bas", "controller: failsafe engaged, sensor readings stale")
				}
				if heaterChanged {
					sel4Actuate(rt, "heater", ctrl.HeaterOn())
				}
				if alarmChanged {
					sel4Actuate(rt, "alarm", ctrl.AlarmOn())
				}
			}
		}
	}

	actuator := func(name string, dev machineDeviceID) *camkes.Component {
		return &camkes.Component{
			Name:     name,
			Priority: 4,
			Devices:  []machineDeviceID{dev},
			Provides: map[string]camkes.Handler{
				IfaceCmd: func(rt *camkes.Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
					if method != methodActuate {
						return nil, errors.New("bas: unknown cmd method")
					}
					return nil, rt.DevWrite(dev, plant.RegActuate, uint32(args[0]))
				},
			},
		}
	}

	sensor := &camkes.Component{
		Name:     NameTempSensor,
		Priority: 6,
		Uses:     []string{"ctrl"},
		Devices:  []machineDeviceID{plant.DevTempSensor},
		Run: func(rt *camkes.Runtime) {
			for {
				rt.Sleep(cfg.SamplePeriod)
				raw, err := rt.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
				if err != nil {
					continue
				}
				temp := plant.DecodeTemp(raw)
				if _, err := rt.Call("ctrl", methodSample, math.Float64bits(temp)); err != nil {
					rt.Trace("bas", fmt.Sprintf("sensor: sample delivery failed: %v", err))
				}
			}
		},
	}

	if webRun == nil {
		webRun = sel4WebBody
	}
	web := &camkes.Component{
		Name:     NameWebInterface,
		Priority: 7,
		Uses:     []string{IfaceMgmt},
		NetPorts: []vnet.Port{WebPort},
		Run:      webRun,
	}

	return &camkes.Assembly{
		Components: []*camkes.Component{
			controller,
			actuator(NameHeaterAct, plant.DevHeater),
			actuator(NameAlarmAct, plant.DevAlarm),
			sensor,
			web,
		},
		Connections: []camkes.Connection{
			{FromComp: NameTempSensor, FromIface: "ctrl", ToComp: NameTempControl, ToIface: IfaceSensorIn},
			{FromComp: NameTempControl, FromIface: "heater", ToComp: NameHeaterAct, ToIface: IfaceCmd},
			{FromComp: NameTempControl, FromIface: "alarm", ToComp: NameAlarmAct, ToIface: IfaceCmd},
			{FromComp: NameWebInterface, FromIface: IfaceMgmt, ToComp: NameTempControl, ToIface: IfaceMgmt},
		},
	}
}

// DeploySel4 boots the seL4/CAmkES platform on a testbed. It is a thin
// wrapper over the Deploy registry, kept so existing callers compile
// unchanged.
//
// Deprecated: use Deploy(PlatformSel4, ...) with DeployOptions instead.
func DeploySel4(tb *Testbed, cfg ScenarioConfig, opts Sel4Options) (*Sel4Deployment, error) {
	dep, err := Deploy(PlatformSel4, tb, cfg, DeployOptions{
		SkipPolicyCheck: opts.SkipPolicyCheck,
		Sel4Web:         opts.WebRun,
	})
	if err != nil {
		return nil, err
	}
	return dep.(*Sel4Deployment), nil
}

// deploySel4 is the seL4 backend of the Deploy registry.
func deploySel4(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (*Sel4Deployment, error) {
	sup := newDeploySupervision(tb, &cfg, opts)
	assembly := ScenarioAssembly(cfg, opts.Sel4Web)
	if opts.BACnet.Enabled {
		// Appended here rather than inside ScenarioAssembly so the exported
		// assembly the AADL compiler tests compare against stays the five-
		// component Fig. 2 scenario. The deployment owns the proxy's
		// anti-replay state; a monitor-respawned gateway resumes from it.
		addSel4BACnetGateway(assembly, opts.BACnet, bacnet.NewProxyState(), tb.Machine.Obs(), sup)
	}
	// The capability distribution doubles as the monitor's certified graph,
	// so it is generated whenever either consumer needs it.
	var spec *capdl.Spec
	if !opts.SkipPolicyCheck || opts.Monitor {
		var err error
		spec, err = camkes.GenerateSpec(assembly)
		if err != nil {
			return nil, fmt.Errorf("bas: generating capdl spec: %w", err)
		}
	}
	// Pre-deploy gate: analyze the capability distribution the builder is
	// about to install. Attacker Sel4Web bodies run with the same caps — the
	// paper's threat model — so the gate holds for attack deployments too.
	if !opts.SkipPolicyCheck {
		if err := checkDeployPolicy(polcheck.FromCapDL(spec)); err != nil {
			return nil, err
		}
	}
	sys, err := camkes.Build(tb.Machine, assembly, camkes.BuildConfig{Net: tb.Net})
	if err != nil {
		return nil, fmt.Errorf("bas: building camkes assembly: %w", err)
	}
	if opts.Recovery {
		startSel4Monitor(tb, sys)
	}
	dep := &Sel4Deployment{
		deploymentBase: deploymentBase{platform: PlatformSel4, tb: tb},
		System:         sys,
		Testbed:        tb,
	}
	if opts.Monitor {
		// Recorded traffic uses kernel names (threads "comp" / "comp.iface",
		// endpoints "comp.iface") while the spec graph uses CapDL names;
		// CapDLSubjectOf collapses threads to components and ChannelNames
		// translates the IPC objects.
		dep.attachMonitor(polcheck.FromCapDL(spec), monitor.Options{
			SubjectOf:    polcheck.CapDLSubjectOf,
			ChannelNames: camkes.ChannelNames(assembly),
			Profiler:     opts.Profiler,
		})
	}
	return dep, nil
}

// sel4MonitorPeriod paces the monitor's liveness sweep.
const sel4MonitorPeriod = time.Second

// startSel4Monitor installs the root-task monitor: seL4 itself has no restart
// policy (mechanism, not policy), so recovery lives in user space. The
// monitor sweeps every generated thread once a second and respawns the dead
// from the CapDL spec — the component-framework analogue of MINIX's
// reincarnation server. It runs on the board clock (root-task context, like
// the bootstrap that built the system), not as a kernel-privileged process.
func startSel4Monitor(tb *Testbed, sys *camkes.System) {
	watched := sys.ThreadNames()
	clock := tb.Machine.Clock()
	var sweep func()
	sweep = func() {
		for _, name := range watched {
			if sys.ThreadAlive(name) {
				continue
			}
			if err := sys.Respawn(name); err != nil {
				tb.Machine.Trace().Logf("monitor", "respawn %s failed: %v", name, err)
			} else {
				tb.Machine.Trace().Logf("monitor", "respawned %s", name)
			}
		}
		clock.After(sel4MonitorPeriod, sweep)
	}
	clock.After(sel4MonitorPeriod, sweep)
}

// sel4Actuate is the controller's bounded retry-with-backoff actuator RPC: a
// call aborted by a driver mid-respawn (or lost to injected faults) is
// retried briefly before this command cycle is abandoned.
func sel4Actuate(rt *camkes.Runtime, iface string, on bool) {
	backoff := 10 * time.Millisecond
	for attempt := 0; attempt < 3; attempt++ {
		_, err := rt.Call(iface, methodActuate, b2u(on))
		if err == nil {
			return
		}
		rt.Sleep(backoff)
		backoff *= 2
	}
	rt.Trace("bas", "controller: giving up on "+iface+" command")
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sel4ControlClient adapts the mgmt RPC interface to ControlClient.
type sel4ControlClient struct {
	rt *camkes.Runtime
}

var _ ControlClient = (*sel4ControlClient)(nil)

func (c *sel4ControlClient) Status() (Status, error) {
	words, err := c.rt.Call(IfaceMgmt, methodStatus)
	if err != nil {
		return Status{}, err
	}
	return Status{
		Temp:     math.Float64frombits(words[0]),
		Setpoint: math.Float64frombits(words[1]),
		HeaterOn: words[2]&statusFlagHeater != 0,
		AlarmOn:  words[2]&statusFlagAlarm != 0,
		Samples:  int64(words[3]),
	}, nil
}

func (c *sel4ControlClient) SetSetpoint(v float64) error {
	_, err := c.rt.Call(IfaceMgmt, methodSetSetpoint, math.Float64bits(v))
	var rpcErr *camkes.RPCError
	if errors.As(err, &rpcErr) && rpcErr.Code == rpcCodeRange {
		return ErrSetpointRange
	}
	return err
}

// sel4WebBody is the legitimate web interface control thread.
func sel4WebBody(rt *camkes.Runtime) {
	l, err := rt.NetListen(WebPort)
	if err != nil {
		rt.Trace("bas", fmt.Sprintf("web: listen failed: %v", err))
		return
	}
	ServeWeb(sel4Listener{rt: rt, l: l}, &sel4ControlClient{rt: rt}, nil)
}

// Net adapters.

type sel4Listener struct {
	rt *camkes.Runtime
	l  int32
}

func (sl sel4Listener) Accept() (NetConn, error) {
	conn, err := sl.rt.NetAccept(sl.l)
	if err != nil {
		return nil, err
	}
	return sel4Conn{rt: sl.rt, fd: conn}, nil
}

type sel4Conn struct {
	rt *camkes.Runtime
	fd int32
}

func (sc sel4Conn) Read(max int) ([]byte, error) { return sc.rt.NetRead(sc.fd, max) }
func (sc sel4Conn) Write(data []byte) error      { return sc.rt.NetWrite(sc.fd, data) }
func (sc sel4Conn) Close() error                 { return sc.rt.NetClose(sc.fd) }
