package bas

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mkbas/internal/httpmini"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
)

func at(d time.Duration) machine.Time { return machine.Time(d) }

func TestControllerBangBang(t *testing.T) {
	c := NewController(DefaultControllerConfig()) // setpoint 22, hysteresis 0.25
	cases := []struct {
		temp       float64
		wantHeater bool
	}{
		{18, true},   // cold: heater on
		{21.9, true}, // inside dead band: hold previous (on)
		{22.3, false},
		{22.1, false}, // inside dead band: hold previous (off)
		{21.5, true},
	}
	for i, tc := range cases {
		c.OnSample(at(time.Duration(i)*time.Second), tc.temp)
		if c.HeaterOn() != tc.wantHeater {
			t.Fatalf("step %d temp=%.1f heater=%v, want %v", i, tc.temp, c.HeaterOn(), tc.wantHeater)
		}
	}
}

func TestControllerAlarmAfterDelay(t *testing.T) {
	cfg := DefaultControllerConfig()
	c := NewController(cfg) // tolerance 2.0, delay 5m
	// In range: no alarm.
	c.OnSample(at(0), 21)
	if c.AlarmOn() {
		t.Fatal("alarm on while in range")
	}
	// Out of range but not yet past the delay.
	c.OnSample(at(time.Minute), 17)
	c.OnSample(at(4*time.Minute), 17)
	if c.AlarmOn() {
		t.Fatal("alarm tripped before the 5-minute delay")
	}
	// Past the delay.
	c.OnSample(at(6*time.Minute+time.Second), 17)
	if !c.AlarmOn() {
		t.Fatal("alarm did not trip after delay")
	}
	// Recovery clears the alarm.
	c.OnSample(at(7*time.Minute), 21.5)
	if c.AlarmOn() {
		t.Fatal("alarm did not clear on recovery")
	}
}

func TestControllerAlarmTimerResetsOnRecovery(t *testing.T) {
	c := NewController(DefaultControllerConfig())
	c.OnSample(at(0), 17)             // out
	c.OnSample(at(3*time.Minute), 21) // back in: timer resets
	c.OnSample(at(4*time.Minute), 17) // out again
	c.OnSample(at(8*time.Minute), 17) // only 4 minutes out
	if c.AlarmOn() {
		t.Fatal("alarm used stale out-of-range timestamp")
	}
	c.OnSample(at(9*time.Minute+time.Second), 17)
	if !c.AlarmOn() {
		t.Fatal("alarm missing after full delay")
	}
}

func TestSetpointClamping(t *testing.T) {
	c := NewController(DefaultControllerConfig()) // range 15..30
	if err := c.SetSetpoint(25); err != nil {
		t.Fatalf("valid setpoint rejected: %v", err)
	}
	if c.Setpoint() != 25 {
		t.Fatalf("setpoint = %v, want 25", c.Setpoint())
	}
	for _, bad := range []float64{14.9, 30.1, 99, -5} {
		if err := c.SetSetpoint(bad); !errors.Is(err, ErrSetpointRange) {
			t.Fatalf("setpoint %v accepted, want range error", bad)
		}
	}
	if c.Setpoint() != 25 {
		t.Fatal("rejected setpoint modified state")
	}
}

func TestControllerProperty_HeaterNeverOnAboveBand(t *testing.T) {
	cfg := DefaultControllerConfig()
	f := func(temps []float64, step uint8) bool {
		c := NewController(cfg)
		now := machine.Time(0)
		for _, raw := range temps {
			temp := 10 + mod(raw, 25) // keep in a physical range
			now = now.Add(time.Duration(step%60+1) * time.Second)
			c.OnSample(now, temp)
			if temp > cfg.Setpoint+cfg.Hysteresis && c.HeaterOn() {
				return false
			}
			if temp < cfg.Setpoint-cfg.Hysteresis && !c.HeaterOn() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mod(v float64, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	x := math.Mod(v, m)
	if x < 0 {
		x += m
	}
	return x
}

func TestStatusString(t *testing.T) {
	st := Status{Temp: 21.5, Setpoint: 22, HeaterOn: true, AlarmOn: false, Samples: 9}
	s := st.String()
	for _, want := range []string{"temp=21.50", "setpoint=22.00", "heater=on", "alarm=off", "samples=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("status %q missing %q", s, want)
		}
	}
}

func TestParseStatusLineRoundTrip(t *testing.T) {
	st := Status{Temp: 19.25, Setpoint: 23.5, HeaterOn: true, AlarmOn: true, Samples: 77}
	got, err := parseStatusLine(st.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Setpoint != 23.5 || !got.HeaterOn || !got.AlarmOn || got.Samples != 77 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Temp != 19.25 {
		t.Fatalf("temp = %v", got.Temp)
	}
	if _, err := parseStatusLine("garbage"); err == nil {
		t.Fatal("garbage parsed")
	}
}

// fakeClient implements ControlClient for webui routing tests.
type fakeClient struct {
	st        Status
	stErr     error
	setCalled []float64
	setErr    error
}

func (f *fakeClient) Status() (Status, error) { return f.st, f.stErr }
func (f *fakeClient) SetSetpoint(v float64) error {
	f.setCalled = append(f.setCalled, v)
	return f.setErr
}

func parseReq(t *testing.T, raw string) *httpmini.Request {
	t.Helper()
	var p httpmini.Parser
	p.Feed([]byte(raw))
	req, err := p.Next()
	if err != nil || req == nil {
		t.Fatalf("bad test request %q: %v", raw, err)
	}
	return req
}

func TestHandleRequestMetricsRoute(t *testing.T) {
	client := &fakeClient{st: Status{Temp: 20, Setpoint: 22}}
	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(9)

	resp := HandleRequest(parseReq(t, "GET /metrics HTTP/1.0\r\n\r\n"), client, reg)
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "demo_total 9") {
		t.Fatalf("metrics route = %d %q", resp.Status, resp.Body)
	}
	// Without a wired source (the microkernel deployments), the route 404s.
	resp = HandleRequest(parseReq(t, "GET /metrics HTTP/1.0\r\n\r\n"), client, nil)
	if resp.Status != 404 {
		t.Fatalf("metrics without source = %d, want 404", resp.Status)
	}
}

func TestHandleRequestRouting(t *testing.T) {
	client := &fakeClient{st: Status{Temp: 20, Setpoint: 22}}

	resp := HandleRequest(parseReq(t, "GET /status HTTP/1.0\r\n\r\n"), client, nil)
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "setpoint=22.00") {
		t.Fatalf("status resp = %d %q", resp.Status, resp.Body)
	}

	resp = HandleRequest(parseReq(t, "POST /setpoint HTTP/1.0\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 10\r\n\r\nvalue=23.5"), client, nil)
	if resp.Status != 200 || len(client.setCalled) != 1 || client.setCalled[0] != 23.5 {
		t.Fatalf("setpoint resp = %d, calls %v", resp.Status, client.setCalled)
	}

	resp = HandleRequest(parseReq(t, "POST /setpoint HTTP/1.0\r\nContent-Length: 9\r\n\r\nvalue=bad"), client, nil)
	if resp.Status != 400 {
		t.Fatalf("bad value status = %d, want 400", resp.Status)
	}

	client.setErr = ErrSetpointRange
	resp = HandleRequest(parseReq(t, "GET /setpoint?value=99 HTTP/1.0\r\n\r\n"), client, nil)
	if resp.Status != 404 {
		t.Fatalf("GET on setpoint = %d, want 404", resp.Status)
	}
	resp = HandleRequest(parseReq(t, "POST /setpoint HTTP/1.0\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 8\r\n\r\nvalue=99"), client, nil)
	if resp.Status != 400 || !strings.Contains(string(resp.Body), "rejected") {
		t.Fatalf("rejected resp = %d %q", resp.Status, resp.Body)
	}

	client.stErr = errors.New("controller dead")
	resp = HandleRequest(parseReq(t, "GET /status HTTP/1.0\r\n\r\n"), client, nil)
	if resp.Status != 500 {
		t.Fatalf("dead controller status = %d, want 500", resp.Status)
	}

	resp = HandleRequest(parseReq(t, "GET / HTTP/1.0\r\n\r\n"), client, nil)
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "GET /status") {
		t.Fatalf("usage resp = %d %q", resp.Status, resp.Body)
	}
}
