package httpmini

import "testing"

func BenchmarkParseRequest(b *testing.B) {
	raw := []byte("POST /setpoint HTTP/1.0\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 10\r\n\r\nvalue=23.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var p Parser
		p.Feed(raw)
		req, err := p.Next()
		if err != nil || req == nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderResponse(b *testing.B) {
	resp := Text(200, "temp=21.50 setpoint=22.00 heater=on alarm=off")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp.Render()
	}
}
