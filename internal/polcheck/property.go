package polcheck

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Property is one static assertion about an access graph.
type Property interface {
	// Name is the instantiated check string, e.g.
	// "deny_path(webInterface, heaterActProc)".
	Name() string
	// Check evaluates the property and returns exactly one finding.
	Check(g *Graph) Finding
}

// ErrProperty reports a malformed property source text.
var ErrProperty = errors.New("polcheck: bad property")

// DenyPath asserts that From cannot deliver data to To without another
// subject's cooperation (ReachDirect). This is the paper's spoofing/attack
// question: a web interface that can reach the heater actuator directly can
// forge actuation commands no matter what the controller does. A flow that
// exists only transitively — through a mediating subject — is reported as
// info, not violation: mediation is the architecture working as intended.
type DenyPath struct {
	From, To string
}

// Name implements Property.
func (p DenyPath) Name() string { return fmt.Sprintf("deny_path(%s, %s)", p.From, p.To) }

// Check implements Property.
func (p DenyPath) Check(g *Graph) Finding {
	f := Finding{Property: "deny_path", Check: p.Name()}
	if path, ok := g.Reachable(p.From, p.To, ReachDirect); ok {
		f.Severity = SeverityViolation
		f.Detail = fmt.Sprintf("%s can reach %s without mediation: %s", p.From, p.To, path)
		f.Path = path.Steps()
		return f
	}
	if path, ok := g.Reachable(p.From, p.To, ReachTransitive); ok {
		f.Severity = SeverityOK
		f.Detail = fmt.Sprintf(
			"no unmediated path %s -> %s (information can still flow via mediators: %s)",
			p.From, p.To, path)
		return f
	}
	f.Severity = SeverityOK
	f.Detail = fmt.Sprintf("no path %s -> %s at all", p.From, p.To)
	return f
}

// AllowPath asserts that From CAN deliver data to To without mediation —
// the liveness side: a policy that denies everything trivially "passes" all
// DenyPath checks but runs nothing.
type AllowPath struct {
	From, To string
}

// Name implements Property.
func (p AllowPath) Name() string { return fmt.Sprintf("allow_path(%s, %s)", p.From, p.To) }

// Check implements Property.
func (p AllowPath) Check(g *Graph) Finding {
	f := Finding{Property: "allow_path", Check: p.Name()}
	if path, ok := g.Reachable(p.From, p.To, ReachDirect); ok {
		f.Severity = SeverityOK
		f.Detail = fmt.Sprintf("%s reaches %s: %s", p.From, p.To, path)
		f.Path = path.Steps()
		return f
	}
	f.Severity = SeverityViolation
	f.Detail = fmt.Sprintf("required flow %s -> %s is not granted", p.From, p.To)
	return f
}

// NoKillAuthority asserts that Subject holds no destroy authority over
// Target — the paper's process-destruction attack ("the attacker can simply
// kill the temperature control process").
type NoKillAuthority struct {
	Subject, Target string
}

// Name implements Property.
func (p NoKillAuthority) Name() string {
	return fmt.Sprintf("no_kill_authority(%s, %s)", p.Subject, p.Target)
}

// Check implements Property.
func (p NoKillAuthority) Check(g *Graph) Finding {
	f := Finding{Property: "no_kill_authority", Check: p.Name()}
	if origin, ok := g.CanKill(p.Subject, p.Target); ok {
		f.Severity = SeverityViolation
		f.Detail = fmt.Sprintf("%s can destroy %s (%s)", p.Subject, p.Target, origin)
		return f
	}
	f.Severity = SeverityOK
	f.Detail = fmt.Sprintf("%s holds no destroy authority over %s", p.Subject, p.Target)
	return f
}

// OnlyEndpoint asserts least privilege on a subject's IPC surface: it may
// send into at most Max distinct destinations (channels or direct subjects).
// The paper's configuration gives the web interface "only one capability, to
// communicate with the temperature controller process".
type OnlyEndpoint struct {
	Subject string
	Max     int
}

// Name implements Property.
func (p OnlyEndpoint) Name() string {
	return fmt.Sprintf("only_endpoint(%s, %d)", p.Subject, p.Max)
}

// Check implements Property.
func (p OnlyEndpoint) Check(g *Graph) Finding {
	f := Finding{Property: "only_endpoint", Check: p.Name()}
	targets := g.SendTargets(p.Subject)
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.Name
	}
	if len(targets) > p.Max {
		f.Severity = SeverityViolation
		f.Detail = fmt.Sprintf("%s can send to %d destinations (max %d): %s",
			p.Subject, len(targets), p.Max, strings.Join(names, ", "))
		return f
	}
	f.Severity = SeverityOK
	f.Detail = fmt.Sprintf("%s sends to %d destination(s) (max %d): %s",
		p.Subject, len(targets), p.Max, strings.Join(names, ", "))
	return f
}

// ParseProperties reads the declarative property language: one property per
// line, "#" comments, blank lines ignored. A property name may appear only
// once per file — a duplicate is almost always a copy-paste error that would
// silently double-count one check in the report.
//
//	deny_path(webInterface, heaterActProc)
//	allow_path(tempSensProc, tempProc)
//	no_kill_authority(webInterface, tempProc)
//	only_endpoint(webInterface, 1)
func ParseProperties(text string) ([]Property, error) {
	var props []Property
	seen := make(map[string]int)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := parseProperty(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrProperty, lineNo+1, err)
		}
		if first, dup := seen[p.Name()]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate property %s (first on line %d)",
				ErrProperty, lineNo+1, p.Name(), first)
		}
		seen[p.Name()] = lineNo + 1
		props = append(props, p)
	}
	return props, nil
}

func parseProperty(line string) (Property, error) {
	name, rest, ok := strings.Cut(line, "(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("want name(arg, arg), got %q", line)
	}
	name = strings.TrimSpace(name)
	var args []string
	for _, a := range strings.Split(strings.TrimSuffix(rest, ")"), ",") {
		args = append(args, strings.TrimSpace(a))
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d args, got %d", name, n, len(args))
		}
		for _, a := range args {
			if a == "" {
				return fmt.Errorf("%s has an empty argument", name)
			}
			if strings.ContainsAny(a, "()") {
				return fmt.Errorf("%s has a stray parenthesis in argument %q", name, a)
			}
		}
		return nil
	}
	switch name {
	case "deny_path":
		if err := need(2); err != nil {
			return nil, err
		}
		return DenyPath{From: args[0], To: args[1]}, nil
	case "allow_path":
		if err := need(2); err != nil {
			return nil, err
		}
		return AllowPath{From: args[0], To: args[1]}, nil
	case "no_kill_authority":
		if err := need(2); err != nil {
			return nil, err
		}
		return NoKillAuthority{Subject: args[0], Target: args[1]}, nil
	case "only_endpoint":
		if err := need(2); err != nil {
			return nil, err
		}
		max, err := strconv.Atoi(args[1])
		if err != nil || max < 0 {
			return nil, fmt.Errorf("only_endpoint wants a non-negative count, got %q", args[1])
		}
		return OnlyEndpoint{Subject: args[0], Max: max}, nil
	default:
		return nil, fmt.Errorf("unknown property %q", name)
	}
}
