package sel4

import (
	"testing"
	"time"

	"mkbas/internal/machine"
)

// BenchmarkCapLookupDenied measures the cost an attacker pays per brute-
// force probe (the E5 inner loop).
func BenchmarkCapLookupDenied(b *testing.B) {
	m := machine.New(machine.Config{})
	k := NewKernel(m, Config{})
	defer m.Shutdown()
	probes := 0
	th := k.CreateThread("prober", 7, func(api *API) {
		for {
			if err := api.NBSend(200, Msg{}); err == nil {
				return
			}
			probes++
		}
	})
	if err := k.Start(th); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := probes + b.N
	for probes < target {
		m.Run(50 * time.Microsecond)
	}
	b.StopTimer()
	if k.Stats().InvalidCapErrs < int64(b.N) {
		b.Fatal("probes not counted")
	}
}

func BenchmarkSignalWait(b *testing.B) {
	m := machine.New(machine.Config{})
	k := NewKernel(m, Config{})
	defer m.Shutdown()
	n := k.CreateNotification("bench")
	rounds := 0
	waiter := k.CreateThread("waiter", 7, func(api *API) {
		for {
			if _, err := api.Wait(1); err != nil {
				return
			}
			rounds++
		}
	})
	signaler := k.CreateThread("signaler", 7, func(api *API) {
		for {
			if err := api.Signal(1); err != nil {
				return
			}
		}
	})
	if err := k.InstallCap(waiter, 1, NotificationCap(n, CapRead, 0)); err != nil {
		b.Fatal(err)
	}
	if err := k.InstallCap(signaler, 1, NotificationCap(n, CapWrite, 1)); err != nil {
		b.Fatal(err)
	}
	if err := k.Start(waiter); err != nil {
		b.Fatal(err)
	}
	if err := k.Start(signaler); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := rounds + b.N
	for rounds < target {
		m.Run(50 * time.Microsecond)
	}
}
