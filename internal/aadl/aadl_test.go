package aadl

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mkbas/internal/core"
)

func loadScenario(t *testing.T) *Package {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "tempcontrol.aadl"))
	if err != nil {
		t.Fatalf("reading model: %v", err)
	}
	pkg, err := Parse(string(src))
	if err != nil {
		t.Fatalf("parsing model: %v", err)
	}
	return pkg
}

func TestParseScenarioModel(t *testing.T) {
	pkg := loadScenario(t)
	if pkg.Name != "TempControl" {
		t.Fatalf("package = %q", pkg.Name)
	}
	if len(pkg.Processes) != 5 {
		t.Fatalf("processes = %d, want 5", len(pkg.Processes))
	}
	sys, ok := pkg.System("temp_control.impl")
	if !ok {
		t.Fatal("system implementation missing")
	}
	if len(sys.Subcomponents) != 5 || len(sys.Connections) != 4 {
		t.Fatalf("subs=%d conns=%d, want 5/4", len(sys.Subcomponents), len(sys.Connections))
	}
	ctrl, _ := pkg.Process("tempProc")
	if ctrl.ACID() != 101 {
		t.Fatalf("tempProc AC_ID = %d, want 101", ctrl.ACID())
	}
	if port, ok := ctrl.Port("web_in"); !ok || port.Direction != DirIn {
		t.Fatalf("web_in port wrong: %+v ok=%v", port, ok)
	}
	web := sys.Connections[3]
	types := web.MessageTypes()
	if len(types) != 2 || types[0] != 4 || types[1] != 5 {
		t.Fatalf("web connection types = %v, want [4 5]", types)
	}
}

// TestScenarioPolicyMatchesAADL pins the hand-written core.ScenarioPolicy to
// the compiled model (experiment E6): the AADL→ACM compiler regenerates the
// kernel's matrix exactly.
func TestScenarioPolicyMatchesAADL(t *testing.T) {
	pkg := loadScenario(t)
	generated, err := GenerateACM(pkg, "temp_control.impl")
	if err != nil {
		t.Fatalf("GenerateACM: %v", err)
	}
	hand := core.ScenarioPolicy().IPC

	subjects := make(map[core.ACID]bool)
	for _, s := range generated.Subjects() {
		subjects[s] = true
	}
	for _, s := range hand.Subjects() {
		subjects[s] = true
	}
	for src := range subjects {
		for dst := range subjects {
			g, h := generated.Mask(src, dst), hand.Mask(src, dst)
			if g != h {
				t.Errorf("cell %d->%d: generated %v, hand-written %v", src, dst, g.Types(), h.Types())
			}
		}
	}
}

func TestGenerateCOutput(t *testing.T) {
	pkg := loadScenario(t)
	src, err := GenerateC(pkg, "temp_control.impl")
	if err != nil {
		t.Fatalf("GenerateC: %v", err)
	}
	for _, want := range []string{
		"acm_table",
		"ACM_NR_RULES",
		"{ 100u, 101u, 0x3ULL }",  // sensor -> controller: types {0,1}
		"{ 104u, 101u, 0x31ULL }", // web -> controller: types {0,4,5}
		"tempSensProc -> tempProc",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q:\n%s", want, src)
		}
	}
	// Deterministic output.
	src2, _ := GenerateC(pkg, "temp_control.impl")
	if src != src2 {
		t.Fatal("GenerateC not deterministic")
	}
}

func TestGenerateCAmkESTopology(t *testing.T) {
	pkg := loadScenario(t)
	topo, err := GenerateCAmkES(pkg, "temp_control.impl")
	if err != nil {
		t.Fatalf("GenerateCAmkES: %v", err)
	}
	if len(topo.Connections) != 4 {
		t.Fatalf("connections = %d, want 4", len(topo.Connections))
	}
	ctrl := topo.Components["tempProc"]
	if ctrl == nil {
		t.Fatal("tempProc missing")
	}
	if len(ctrl.Provides) != 2 { // sensor_in, web_in
		t.Fatalf("tempProc provides %v, want 2 interfaces", ctrl.Provides)
	}
	if len(ctrl.Uses) != 2 { // heater_out, alarm_out
		t.Fatalf("tempProc uses %v, want 2 interfaces", ctrl.Uses)
	}
	web := topo.Components["webInterface"]
	if len(web.Uses) != 1 || len(web.Provides) != 0 {
		t.Fatalf("webInterface ifaces = %+v, want exactly one uses", web)
	}

	adl := topo.RenderCAmkES("temp_control.impl")
	for _, want := range []string{
		"connection seL4RPCCall c1(from tempSensProc.sensor_out, to tempProc.sensor_in);",
		"component WebInterface webInterface;",
	} {
		if !strings.Contains(adl, want) {
			t.Errorf("ADL missing %q:\n%s", want, adl)
		}
	}
}

func TestCommentsAndCaseInsensitivity(t *testing.T) {
	src := `
-- leading comment
PACKAGE Demo
PUBLIC
PROCESS a
FEATURES
  o: OUT EVENT DATA PORT; -- trailing comment
PROPERTIES
  ac_id => 1;
END a;
process b
features
  i: in event data port;
properties
  AC_ID => 2;
end b;
system implementation s.impl
subcomponents
  a: process a;
  b: process b;
connections
  c: port a.o -> b.i { Message_Type => 1; };
end s.impl;
end Demo;
`
	pkg, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m, err := GenerateACM(pkg, "s.impl")
	if err != nil {
		t.Fatalf("GenerateACM: %v", err)
	}
	if !m.Allows(1, 2, 1) || !m.Allows(2, 1, 0) {
		t.Fatal("case-insensitive model produced wrong matrix")
	}
}

func TestNamespacedProperty(t *testing.T) {
	src := `
package P
public
process a
properties
  BAS_Properties::AC_ID => 9;
end a;
end P;
`
	pkg, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	proc, _ := pkg.Process("a")
	if proc.ACID() != 9 {
		t.Fatalf("namespaced AC_ID = %d, want 9", proc.ACID())
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "not aadl at all"},
		{"mismatched end", "package P\npublic\nend Q;"},
		{"bad port", "package P\npublic\nprocess a\nfeatures\n x: sideways port;\nproperties\n AC_ID => 1;\nend a;\nend P;"},
		{"bad char", "package P\npublic\n@\nend P;"},
		{"unclosed list", "package P\npublic\nprocess a\nproperties\n AC_ID => (1, 2;\nend a;\nend P;"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatalf("accepted %q", tc.src)
			} else {
				var syn *SyntaxError
				if !errors.As(err, &syn) {
					t.Fatalf("err = %T %v, want SyntaxError", err, err)
				}
			}
		})
	}
}

func TestSemanticErrors(t *testing.T) {
	header := "package P\npublic\n"
	procs := `
process a
features
  o: out event data port;
  i: in event data port;
properties
  AC_ID => 1;
end a;
process b
features
  i: in event data port;
properties
  AC_ID => 2;
end b;
`
	cases := []struct {
		name string
		src  string
	}{
		{"missing acid", header + "process x\nend x;\nend P;"},
		{"duplicate acid", header + "process x\nproperties\n AC_ID => 5;\nend x;\nprocess y\nproperties\n AC_ID => 5;\nend y;\nend P;"},
		{"unknown subcomponent type", header + procs + "system implementation s.impl\nsubcomponents\n z: process zz;\nend s.impl;\nend P;"},
		{"unknown port", header + procs + "system implementation s.impl\nsubcomponents\n a: process a;\n b: process b;\nconnections\n c: port a.ghost -> b.i;\nend s.impl;\nend P;"},
		{"direction mismatch", header + procs + "system implementation s.impl\nsubcomponents\n a: process a;\n b: process b;\nconnections\n c: port a.i -> b.i;\nend s.impl;\nend P;"},
		{"type out of range", header + procs + "system implementation s.impl\nsubcomponents\n a: process a;\n b: process b;\nconnections\n c: port a.o -> b.i { Message_Type => 64; };\nend s.impl;\nend P;"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatal("model accepted")
			} else {
				var sem *SemanticError
				if !errors.As(err, &sem) {
					t.Fatalf("err = %T %v, want SemanticError", err, err)
				}
			}
		})
	}
}

func TestConnectionWithoutTypesRejectedByACMCompiler(t *testing.T) {
	src := `
package P
public
process a
features
  o: out event data port;
properties
  AC_ID => 1;
end a;
process b
features
  i: in event data port;
properties
  AC_ID => 2;
end b;
system implementation s.impl
subcomponents
  a: process a;
  b: process b;
connections
  c: port a.o -> b.i;
end s.impl;
end P;
`
	pkg, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := GenerateACM(pkg, "s.impl"); err == nil {
		t.Fatal("ACM generated for untyped connection")
	}
}

func TestGenerateForUnknownSystem(t *testing.T) {
	pkg := loadScenario(t)
	if _, err := GenerateACM(pkg, "nope.impl"); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := GenerateCAmkES(pkg, "nope.impl"); err == nil {
		t.Fatal("unknown system accepted")
	}
}
