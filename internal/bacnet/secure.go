package bacnet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The secure proxy of Fig. 1: a bump-in-the-wire in front of a legacy
// device. Frames are authenticated with HMAC-SHA256 under a shared device
// key and carry a per-client strictly increasing nonce, so spoofed frames
// fail the MAC and captured frames fail the freshness check. The legacy
// device behind the proxy is untouched, which is the point — "any approach
// to secure BAS must accommodate the long field life of control hardware".

// Proxy errors.
var (
	ErrBadMAC      = errors.New("bacnet: authentication failed")
	ErrReplay      = errors.New("bacnet: stale nonce (replay)")
	ErrShortSecure = errors.New("bacnet: short secure frame")
)

// secure frame layout: client id (4) | nonce (8) | mac (32) | pdu.
const (
	clientIDLen     = 4
	nonceLen        = 8
	macLen          = sha256.Size
	secureHeaderLen = clientIDLen + nonceLen + macLen
)

// sealFrame builds an authenticated frame.
func sealFrame(key []byte, clientID uint32, nonce uint64, pdu []byte) []byte {
	out := make([]byte, secureHeaderLen+len(pdu))
	binary.BigEndian.PutUint32(out, clientID)
	binary.BigEndian.PutUint64(out[clientIDLen:], nonce)
	copy(out[secureHeaderLen:], pdu)
	mac := hmac.New(sha256.New, key)
	mac.Write(out[:clientIDLen+nonceLen])
	mac.Write(pdu)
	copy(out[clientIDLen+nonceLen:], mac.Sum(nil))
	return out
}

// openFrame verifies and strips the security header.
func openFrame(key []byte, frame []byte) (clientID uint32, nonce uint64, pdu []byte, err error) {
	if len(frame) < secureHeaderLen {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrShortSecure, len(frame))
	}
	clientID = binary.BigEndian.Uint32(frame)
	nonce = binary.BigEndian.Uint64(frame[clientIDLen:])
	gotMAC := frame[clientIDLen+nonceLen : secureHeaderLen]
	pdu = frame[secureHeaderLen:]
	mac := hmac.New(sha256.New, key)
	mac.Write(frame[:clientIDLen+nonceLen])
	mac.Write(pdu)
	if !hmac.Equal(gotMAC, mac.Sum(nil)) {
		return 0, 0, nil, ErrBadMAC
	}
	return clientID, nonce, pdu, nil
}

// ProxyState is the proxy's durable anti-replay state: the per-client nonce
// floor. A real bump-in-the-wire proxy must persist this across restarts —
// a proxy that boots with an empty table accepts any captured pre-restart
// frame again, reopening exactly the replay window it exists to close.
type ProxyState struct {
	// LastNonce is the highest nonce accepted per client id.
	LastNonce map[uint32]uint64 `json:"last_nonce"`
}

// NewProxyState returns an empty nonce-floor table.
func NewProxyState() *ProxyState {
	return &ProxyState{LastNonce: make(map[uint32]uint64)}
}

// Proxy authenticates secure frames and forwards the inner legacy PDUs to
// the wrapped server.
type Proxy struct {
	key    []byte
	server *Server
	// state holds per-client freshness floors; shared with the deployment
	// when the proxy was built with NewProxyResuming.
	state *ProxyState

	// Audit counters.
	accepted int64
	rejected int64
}

// NewProxy wraps a legacy server with the shared device key and a fresh
// (empty) anti-replay state. Use NewProxyResuming when a restarted proxy
// must honor the nonce floor of its previous incarnation.
func NewProxy(key []byte, server *Server) *Proxy {
	return NewProxyResuming(key, server, nil)
}

// NewProxyResuming wraps a legacy server, seeding the anti-replay nonce
// floor from state — the handoff a restarted proxy performs so frames
// captured before the restart stay stale after it. The proxy mutates state
// in place, so the caller's pointer always holds the current floor (ready to
// hand to the next incarnation). A nil state is equivalent to NewProxy.
func NewProxyResuming(key []byte, server *Server, state *ProxyState) *Proxy {
	if len(key) == 0 {
		panic("bacnet: proxy needs a key")
	}
	if state == nil {
		state = NewProxyState()
	}
	if state.LastNonce == nil {
		state.LastNonce = make(map[uint32]uint64)
	}
	return &Proxy{
		key:    append([]byte(nil), key...),
		server: server,
		state:  state,
	}
}

// State returns the proxy's live anti-replay state. The returned pointer
// tracks every accepted frame, so persisting it at any instant (or passing
// it straight to NewProxyResuming) carries the current nonce floor over.
func (p *Proxy) State() *ProxyState { return p.state }

// Accepted reports how many frames passed authentication and freshness.
func (p *Proxy) Accepted() int64 { return p.accepted }

// Rejected reports how many frames were dropped.
func (p *Proxy) Rejected() int64 { return p.rejected }

// HandleFrame verifies one secure frame; on success it forwards the inner
// PDU to the legacy server and seals the response under the same client id
// and nonce. On failure it returns an error and no response leaves the
// proxy (fail-silent, like a firewall drop).
func (p *Proxy) HandleFrame(frame []byte) ([]byte, error) {
	clientID, nonce, pdu, err := openFrame(p.key, frame)
	if err != nil {
		p.rejected++
		return nil, err
	}
	if last, seen := p.state.LastNonce[clientID]; seen && nonce <= last {
		p.rejected++
		return nil, fmt.Errorf("%w: nonce %d <= %d", ErrReplay, nonce, last)
	}
	p.state.LastNonce[clientID] = nonce
	p.accepted++
	resp := p.server.HandleFrame(pdu)
	return sealFrame(p.key, clientID, nonce, resp), nil
}

// SecureClient produces and consumes secure frames for one client identity.
type SecureClient struct {
	key      []byte
	clientID uint32
	nonce    uint64
}

// NewSecureClient builds a client with the shared key.
func NewSecureClient(key []byte, clientID uint32) *SecureClient {
	return &SecureClient{key: append([]byte(nil), key...), clientID: clientID}
}

// Seal wraps a request PDU in a fresh authenticated frame.
func (c *SecureClient) Seal(req PDU) []byte {
	c.nonce++
	return sealFrame(c.key, c.clientID, c.nonce, req.Encode())
}

// Open verifies a response frame and returns the inner PDU. Responses reuse
// the request nonce; the client accepts only its own current nonce, closing
// the response-replay direction too.
func (c *SecureClient) Open(frame []byte) (PDU, error) {
	clientID, nonce, pdu, err := openFrame(c.key, frame)
	if err != nil {
		return PDU{}, err
	}
	if clientID != c.clientID || nonce != c.nonce {
		return PDU{}, fmt.Errorf("%w: response nonce %d, want %d", ErrReplay, nonce, c.nonce)
	}
	return DecodePDU(pdu)
}
