package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// BenchPoint is one worker-count measurement.
type BenchPoint struct {
	Workers int `json:"workers"`
	// ElapsedMS is wall-clock time for the whole campaign, in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ShardsPerSec is campaign throughput.
	ShardsPerSec float64 `json:"shards_per_sec"`
	// Speedup is relative to the first (serial) point.
	Speedup float64 `json:"speedup"`
}

// BenchReport is the scaling measurement check.sh records to BENCH_lab.json.
type BenchReport struct {
	Shards int          `json:"shards"`
	Points []BenchPoint `json:"points"`
	// Identical confirms the determinism contract held: every worker
	// count's merged JSON was byte-identical to the serial run's.
	Identical bool `json:"identical"`
	// HostCPUs is GOMAXPROCS at measurement time — scaling beyond it is
	// not expected.
	HostCPUs int `json:"host_cpus"`
}

// Bench runs the sweep once per worker count, measuring wall-clock
// throughput and verifying that every run's merged JSON is byte-identical
// to the first. The first worker count is the speedup baseline, so pass 1
// first for honest serial-relative numbers.
func Bench(sweep Sweep, workerCounts []int, hostCPUs int) (*BenchReport, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("lab: no worker counts to bench")
	}
	rep := &BenchReport{Identical: true, HostCPUs: hostCPUs}
	var baseline []byte
	var baseElapsed float64
	for i, w := range workerCounts {
		res, err := Run(sweep, Options{Workers: w})
		if err != nil {
			return nil, err
		}
		out, err := res.JSON()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			rep.Shards = len(res.Cases)
			baseline = out
			baseElapsed = float64(res.Elapsed.Nanoseconds())
		} else if !bytes.Equal(out, baseline) {
			rep.Identical = false
		}
		elapsed := float64(res.Elapsed.Nanoseconds())
		pt := BenchPoint{
			Workers:      res.Workers,
			ElapsedMS:    elapsed / 1e6,
			ShardsPerSec: float64(len(res.Cases)) / (elapsed / 1e9),
			Speedup:      baseElapsed / elapsed,
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// JSON renders the bench report as indented JSON with a trailing newline.
func (r *BenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
