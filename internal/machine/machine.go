package machine

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mkbas/internal/obs"
	"mkbas/internal/perf"
)

// Config parameterises a board.
type Config struct {
	// Costs is the kernel-entry/context-switch cost model; zero value means
	// DefaultCosts.
	Costs Costs
	// Seed drives the board's deterministic randomness source (sensor noise
	// etc.). The zero seed is replaced with 1 so that the zero Config is
	// usable.
	Seed int64
	// TraceCapacity bounds the console ring buffer; zero means 4096 lines.
	TraceCapacity int
}

// Machine is one virtual controller board: engine + clock + bus + trace
// console + deterministic randomness.
type Machine struct {
	clock  *Clock
	engine *Engine
	bus    *Bus
	trace  *Trace
	ipc    *IPCLog
	obs    *obs.Board
	rng    *rand.Rand
}

// New assembles a board from cfg.
func New(cfg Config) *Machine {
	costs := cfg.Costs
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clock := NewClock()
	board := obs.NewBoard(func() obs.Time { return obs.Time(clock.Now()) })
	m := &Machine{
		clock:  clock,
		engine: NewEngine(clock, costs),
		bus:    NewBus(),
		trace:  NewTrace(clock, cfg.TraceCapacity),
		ipc:    NewIPCLog(),
		obs:    board,
		rng:    rand.New(rand.NewSource(seed)),
	}
	m.engine.instrument(board.Metrics())
	return m
}

// SetProfiler binds the board's host-time accounting to a perf profiler:
// every subsequent Run/RunUntil books into "engine.run" and every dispatch
// into "engine.dispatch". Nil-safe; boards deployed without profiling never
// pay more than a nil check per scope.
func (m *Machine) SetProfiler(p *perf.Profiler) { m.engine.setProfiler(p) }

// Clock returns the board clock.
func (m *Machine) Clock() *Clock { return m.clock }

// Engine returns the scheduler engine.
func (m *Machine) Engine() *Engine { return m.engine }

// Bus returns the device bus.
func (m *Machine) Bus() *Bus { return m.bus }

// Trace returns the board trace console.
func (m *Machine) Trace() *Trace { return m.trace }

// IPC returns the board's aggregated IPC usage log.
func (m *Machine) IPC() *IPCLog { return m.ipc }

// Obs returns the board's observability layer: metrics registry, IPC span
// tracer, and security-event stream.
func (m *Machine) Obs() *obs.Board { return m.obs }

// Rand returns the board's deterministic randomness source.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Run drives the engine for a virtual duration from the current instant.
func (m *Machine) Run(d time.Duration) RunResult {
	return m.engine.Run(m.clock.Now().Add(d))
}

// RunUntil drives the engine to an absolute virtual instant. Lockstep
// orchestration (internal/building) uses it so every board converges on the
// same round deadline: Run(slice) would compound each board's deterministic
// overshoot into drift between boards, RunUntil cannot.
func (m *Machine) RunUntil(at Time) RunResult {
	return m.engine.Run(at)
}

// Shutdown tears down all process goroutines.
func (m *Machine) Shutdown() { m.engine.Shutdown() }

// TraceLine is one timestamped console line.
type TraceLine struct {
	At   Time
	Tag  string
	Text string
}

// String renders the line as "[12.5s] tag: text".
func (l TraceLine) String() string {
	return fmt.Sprintf("[%s] %s: %s", l.At, l.Tag, l.Text)
}

// Trace is a bounded, timestamped console log. Kernels and applications use
// it for the experiment traces printed by cmd/bascontrol; tests assert on it.
// Once full it is a circular buffer: head indexes the oldest line, so an
// append overwrites in place instead of shifting the whole backlog.
type Trace struct {
	clock *Clock
	cap   int
	lines []TraceLine
	head  int
}

// NewTrace creates a trace console; capacity <= 0 means 4096 lines.
func NewTrace(clock *Clock, capacity int) *Trace {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Trace{clock: clock, cap: capacity}
}

// Logf appends a formatted line under tag. When the buffer is full the
// oldest line is dropped.
func (t *Trace) Logf(tag, format string, args ...any) {
	line := TraceLine{At: t.clock.Now(), Tag: tag, Text: fmt.Sprintf(format, args...)}
	if len(t.lines) == t.cap {
		t.lines[t.head] = line
		t.head = (t.head + 1) % t.cap
		return
	}
	t.lines = append(t.lines, line)
}

// each calls fn on every buffered line, oldest first.
func (t *Trace) each(fn func(TraceLine)) {
	for _, l := range t.lines[t.head:] {
		fn(l)
	}
	for _, l := range t.lines[:t.head] {
		fn(l)
	}
}

// Lines returns a copy of the buffered lines, oldest first.
func (t *Trace) Lines() []TraceLine {
	out := make([]TraceLine, 0, len(t.lines))
	t.each(func(l TraceLine) { out = append(out, l) })
	return out
}

// Grep returns the lines whose tag or text contains substr, oldest first.
func (t *Trace) Grep(substr string) []TraceLine {
	var out []TraceLine
	t.each(func(l TraceLine) {
		if strings.Contains(l.Tag, substr) || strings.Contains(l.Text, substr) {
			out = append(out, l)
		}
	})
	return out
}

// String renders the whole trace, one line per entry.
func (t *Trace) String() string {
	var b strings.Builder
	t.each(func(l TraceLine) {
		b.WriteString(l.String())
		b.WriteByte('\n')
	})
	return b.String()
}
