package camkes

import (
	"fmt"

	"mkbas/internal/sel4"
)

// CAmkES event connections ("CAmkES, like AADL, allows for many different
// connection types"): an emitter raises an event, a consumer waits for it.
// Events are built on seL4 notification objects; each consumed event gets a
// notification object, each emitting connection a badged signal capability.
//
// Slot layout continues the scheme in build.go.
const (
	// SlotEmitBase is the first emit-capability slot (signal rights).
	SlotEmitBase sel4.CPtr = 80
	// SlotConsumeBase is the first consume-capability slot (wait rights).
	SlotConsumeBase sel4.CPtr = 100
)

// Emit raises an event on one of the component's emits-interfaces.
func (rt *Runtime) Emit(event string) error {
	slot, ok := rt.emits[event]
	if !ok {
		return fmt.Errorf("%w: component %q does not emit %q", ErrBadAssembly, rt.comp.Name, event)
	}
	return rt.api.Signal(slot)
}

// WaitEvent blocks until the named consumed event fires; the returned word
// carries the badges of all emitters that fired since the last wait.
func (rt *Runtime) WaitEvent(event string) (sel4.Badge, error) {
	slot, ok := rt.consumes[event]
	if !ok {
		return 0, fmt.Errorf("%w: component %q does not consume %q", ErrBadAssembly, rt.comp.Name, event)
	}
	return rt.api.Wait(slot)
}

// PollEvent is the non-blocking WaitEvent.
func (rt *Runtime) PollEvent(event string) (sel4.Badge, error) {
	slot, ok := rt.consumes[event]
	if !ok {
		return 0, fmt.Errorf("%w: component %q does not consume %q", ErrBadAssembly, rt.comp.Name, event)
	}
	return rt.api.Poll(slot)
}
