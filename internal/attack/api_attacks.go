// API attack family (experiment E16): the attacker no longer sits inside the
// web interface process — they sit outside the building with a stolen tenant
// credential. The board's kernel-level mediation is blind to this attacker by
// construction: a stolen manager token's setpoint write rides the same
// certified IPC edges as a legitimate operator's. Whatever blocks these
// attacks must therefore be the tenant tier itself — session auth,
// role-based authorisation against the certified tenant graph, rate
// limiting, and admission control — and the harness adjudicates with the
// same ground-truth safety monitors and typed denial events as the board
// attacks.
package attack

import (
	"fmt"

	"mkbas/internal/bas"
	"mkbas/internal/obs"
	"mkbas/internal/polcheck/monitor"
	"mkbas/internal/safety"
	"mkbas/internal/tenantapi"
)

// API attacks. Spec.Root selects the attacker model: false is a stolen
// occupant credential, true a stolen facility-manager credential (the "root"
// of the tenant tier's authority lattice).
const (
	// ActionAPITokenReplay replays the stolen credential for everything its
	// role permits: reads for recon, setpoint writes when the credential is
	// a manager's. The manager variant is the family's money row — the write
	// is certified, in-band, and physically harmful, so only credential
	// revocation plus origin demotion (Spec.Demote) can block it.
	ActionAPITokenReplay Action = "api-token-replay"
	// ActionAPIRoleEscalation drives manager- and vendor-only routes with an
	// occupant credential: setpoint writes, diagnostics, cross-room reads.
	ActionAPIRoleEscalation Action = "api-role-escalation"
	// ActionAPIVendorPivot uses a stolen vendor credential to harvest
	// diagnostics, then pivots toward room state and setpoint writes.
	ActionAPIVendorPivot Action = "api-vendor-pivot"
	// ActionAPIFlood floods the tier with junk-token and stolen-token
	// requests, with periodic spikes, while legitimate manager probes check
	// whether service survives.
	ActionAPIFlood Action = "api-flood"
)

// AllAPIActions lists the API attack family. Kept separate from
// AllActions(): the board attacks run inside the web interface process, the
// API attacks outside the building, and sweeps opt into each family
// explicitly.
func AllAPIActions() []Action {
	return []Action{
		ActionAPITokenReplay, ActionAPIRoleEscalation,
		ActionAPIVendorPivot, ActionAPIFlood,
	}
}

// IsAPIAction reports whether the action belongs to the API attack family.
func IsAPIAction(a Action) bool {
	switch a {
	case ActionAPITokenReplay, ActionAPIRoleEscalation, ActionAPIVendorPivot, ActionAPIFlood:
		return true
	}
	return false
}

// apiSeed fixes the tenant directory and latency-jitter streams for attack
// runs; reports stay byte-comparable across platforms and hosts.
const apiSeed = 0xBA5E16

// apiRounds slices the attack window: the request script runs between run
// slices on the harness thread (setpoint writes step the machine through the
// real HTTP+IPC path and must never run inside clock callbacks).
const apiRounds = 36

// executeAPIScenario runs one API attack end to end: a benign board deploys
// with the tenant-gateway policy row, the tenant tier fronts it, and the
// scripted attacker drives the tier from outside.
func executeAPIScenario(spec Spec, cfg bas.ScenarioConfig) (*Report, error) {
	if spec.FaultPlan != "" && spec.FaultPlan != "none" {
		return nil, fmt.Errorf("attack: API attacks take no fault plan (got %q)", spec.FaultPlan)
	}
	if spec.ForkQuota > 0 {
		return nil, fmt.Errorf("attack: API attacks take no fork quota")
	}
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()

	prog := &progress{}
	dep, err := bas.Deploy(spec.Platform, tb, cfg, bas.DeployOptions{
		TenantAPI: true,
		Recovery:  spec.Recovery,
		Monitor:   spec.Monitor || spec.Demote,
		Profiler:  spec.Profiler,
	})
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	tier := bas.AttachTenantAPI(tb,
		tenantapi.DirectoryConfig{Seed: apiSeed, Rooms: 1, Occupants: 8, Managers: 2, Vendors: 2},
		tenantapi.GatewayConfig{Seed: apiSeed},
	)

	monCfg := safety.DefaultConfig()
	monCfg.Setpoint = cfg.Controller.Setpoint
	monCfg.Tolerance = cfg.Controller.AlarmTolerance
	monCfg.AlarmDelay = cfg.Controller.AlarmDelay
	monCfg.SettleTime = settleTime / 2
	mon := safety.Attach(tb.Machine.Clock(), tb.Room, monCfg)

	dep.Run(settleTime)

	stolen := stolenPrincipal(tier, spec)
	prog.note("stolen credential: %s (%s)", stolen.Name, stolen.Role)
	if spec.Demote {
		// Incident response at the attack window's open: the credential is
		// revoked and its role's origin demoted below the certified tenant
		// graph, so even the role's certified edges stop verifying.
		if tier.Directory.Revoke(stolen.Name) {
			prog.note("incident response: credential %s revoked", stolen.Name)
		}
		if tier.Gateway.Monitor().Demote(stolen.Role.Subject(), monitor.OriginUntrusted) {
			prog.note("incident response: origin demotion %s -> untrusted", stolen.Role.Subject())
		}
	}

	script := apiScript(spec, tier, stolen, prog)
	for round := 0; round < apiRounds; round++ {
		script(round)
		dep.Run(attackTime / apiRounds)
	}
	tierStats := tier.Gateway.Monitor().Stats()
	prog.note("tier: %d served, %d unauthorized, %d forbidden, %d rate-limited, %d overload; monitor: %d origin drift",
		tier.Gateway.Served(), tier.Gateway.Denied(tenantapi.OutcomeUnauthorized),
		tier.Gateway.Denied(tenantapi.OutcomeForbidden), tier.Gateway.Denied(tenantapi.OutcomeRateLimited),
		tier.Gateway.Denied(tenantapi.OutcomeOverload), tierStats.OriginDrifts)

	eventLog := tb.Machine.Obs().Events()
	var denied []obs.SecurityEvent
	for _, e := range eventLog.Events() {
		if e.Denied {
			denied = append(denied, e)
		}
	}
	violations := mon.Violations()
	alive := dep.ControllerAlive()
	report := &Report{
		Spec:               spec,
		OperationSucceeded: prog.successes > 0,
		Attempts:           prog.attempts,
		Successes:          prog.successes,
		Denials:            prog.denials,
		ControllerAlive:    alive,
		Violations:         violations,
		PhysicalCompromise: len(violations) > 0 || !alive,
		Notes:              prog.notes,
		SecurityEvents:     denied,
		Mechanisms:         eventLog.Mechanisms(),
		Obs:                dep.Report(false),
		IPCUsages:          tb.Machine.IPC().Usages(),
		Restarts:           dep.ControllerRestarts(),
		Recovered:          dep.ControllerRecovered(),
	}
	if pm := dep.PolicyMonitor(); pm != nil {
		stats := pm.Stats()
		report.MonitorStats = &stats
	}
	return report, nil
}

// stolenPrincipal picks the credential the attacker holds.
func stolenPrincipal(tier *bas.TenantTier, spec Spec) *tenantapi.Principal {
	switch {
	case spec.Action == ActionAPIVendorPivot:
		return tier.Directory.Find("vendor-0000")
	case spec.Root && spec.Action == ActionAPITokenReplay:
		return tier.Directory.Find("manager-0000")
	default:
		return tier.Directory.Find("occupant-0000")
	}
}

// apiScript builds the per-round request script for the action. Every
// request is counted: served ones as attacker successes only when the
// operation itself is the attack's objective (recon reads, harmful writes,
// diagnostics exfil), denied ones as denials.
func apiScript(spec Spec, tier *bas.TenantTier, stolen *tenantapi.Principal, prog *progress) func(round int) {
	var resp tenantapi.Response
	// attempt drives one stolen-credential request and books the tally: a
	// served request is an attacker success, a refused one a denial.
	attempt := func(req tenantapi.Request) tenantapi.Outcome {
		prog.attempts++
		out := tier.Serve(&req, &resp)
		if out == tenantapi.OutcomeOK {
			prog.successes++
		} else {
			prog.denials++
		}
		return out
	}
	token := stolen.Token
	switch spec.Action {
	case ActionAPITokenReplay:
		first := true
		return func(round int) {
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteWhoAmI})
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteStatus, Room: 0})
			if stolen.Role == tenantapi.RoleManager {
				// The harmful write: in-band for the gateway's validator,
				// certified for the manager role, 9 degrees above the
				// building's configured comfort point.
				out := attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteSetpoint, Room: 0, Value: tenantapi.MaxSetpoint})
				if first && out == tenantapi.OutcomeOK {
					prog.note("round %d: stolen manager token wrote setpoint %.1f through the certified path", round, tenantapi.MaxSetpoint)
					first = false
				}
			} else {
				attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteSetpoint, Room: 0, Value: 27})
			}
		}
	case ActionAPIRoleEscalation:
		return func(round int) {
			// Only operations outside the occupant's certified edges: a
			// served one would be a real escalation.
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteSetpoint, Room: 0, Value: 27})
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteDiagnostics})
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteStatus, Room: stolen.Room + 1})
		}
	case ActionAPIVendorPivot:
		return func(round int) {
			// Diagnostics are the vendor's certified edge — served, and
			// counted as the exfil objective. The pivot attempts are not.
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteDiagnostics})
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteStatus, Room: 0})
			attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteSetpoint, Room: 0, Value: tenantapi.MinSetpoint})
		}
	case ActionAPIFlood:
		legit := tier.Directory.Find("manager-0001")
		var legitShed bool
		return func(round int) {
			// Legitimate steady traffic first (it was in flight before the
			// burst): a shed probe means the flood achieved denial of
			// service, which is the flood's objective.
			for i := 0; i < 2; i++ {
				prog.attempts++
				out := tier.Serve(&tenantapi.Request{Token: legit.Token, Route: tenantapi.RouteStatus, Room: 0}, &resp)
				if out != tenantapi.OutcomeOK {
					prog.successes++
					if !legitShed {
						prog.note("round %d: legitimate manager probe shed (%v) — flood achieved DoS", round, out)
						legitShed = true
					}
				}
			}
			// Sustained anonymous flood: junk tokens die at session auth.
			for i := 0; i < 60; i++ {
				attempt(tenantapi.Request{Token: "tok-deadbeefdeadbeef", Route: tenantapi.RouteStatus, Room: 0})
			}
			// Authenticated flood beyond the stolen credential's certified
			// room and rate: rbac sheds the head, the token bucket the tail.
			for i := 0; i < 50; i++ {
				attempt(tenantapi.Request{Token: token, Route: tenantapi.RouteStatus, Room: stolen.Room + 1})
			}
			// Periodic spike past the admission budget: backpressure sheds
			// the overflow before identity is even established.
			if round%6 == 0 {
				for i := 0; i < 300; i++ {
					attempt(tenantapi.Request{Token: "tok-0000000000000000", Route: tenantapi.RouteWhoAmI})
				}
			}
		}
	}
	return func(int) {}
}
