package aadl

import "fmt"

// PortDirection is an AADL port direction.
type PortDirection int

// Port directions.
const (
	DirIn PortDirection = iota + 1
	DirOut
)

// String renders "in"/"out".
func (d PortDirection) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// Port is one feature of a process: "name: in|out event data port;".
type Port struct {
	Name      string
	Direction PortDirection
	Line      int
}

// PropValue is a property association value: either a number or a list of
// numbers.
type PropValue struct {
	Number int64
	List   []int64
	IsList bool
}

// Process is an AADL process type declaration.
type Process struct {
	Name       string
	Ports      []Port
	Properties map[string]PropValue
	Line       int
}

// Port finds a feature by name.
func (p *Process) Port(name string) (Port, bool) {
	for _, port := range p.Ports {
		if port.Name == name {
			return port, true
		}
	}
	return Port{}, false
}

// ACID returns the process's AC_ID property (0 if absent).
func (p *Process) ACID() int64 {
	if v, ok := p.Properties["ac_id"]; ok && !v.IsList {
		return v.Number
	}
	return 0
}

// Subcomponent is one process instance inside a system implementation.
type Subcomponent struct {
	Name        string
	ProcessType string
	Line        int
}

// PortRef addresses "component.port".
type PortRef struct {
	Component string
	Port      string
}

// String renders "comp.port".
func (r PortRef) String() string { return r.Component + "." + r.Port }

// Connection is a directional port connection with optional properties
// (message types the connection may carry).
type Connection struct {
	Label      string
	Src        PortRef
	Dst        PortRef
	Properties map[string]PropValue
	Line       int
}

// MessageTypes returns the connection's permitted message types from the
// Message_Type / Message_Types property; nil when unset.
func (c *Connection) MessageTypes() []int64 {
	if v, ok := c.Properties["message_types"]; ok {
		if v.IsList {
			return v.List
		}
		return []int64{v.Number}
	}
	if v, ok := c.Properties["message_type"]; ok {
		if v.IsList {
			return v.List
		}
		return []int64{v.Number}
	}
	return nil
}

// SystemImpl is "system implementation name.impl ... end name.impl;".
type SystemImpl struct {
	Name          string // "name.impl" combined
	Subcomponents []Subcomponent
	Connections   []Connection
	Line          int
}

// Sub finds a subcomponent by instance name.
func (s *SystemImpl) Sub(name string) (Subcomponent, bool) {
	for _, sub := range s.Subcomponents {
		if sub.Name == name {
			return sub, true
		}
	}
	return Subcomponent{}, false
}

// Package is one parsed AADL package.
type Package struct {
	Name      string
	Processes []Process
	Systems   []SystemImpl
}

// Process finds a process type by name.
func (p *Package) Process(name string) (*Process, bool) {
	for i := range p.Processes {
		if p.Processes[i].Name == name {
			return &p.Processes[i], true
		}
	}
	return nil, false
}

// System finds a system implementation by name.
func (p *Package) System(name string) (*SystemImpl, bool) {
	for i := range p.Systems {
		if p.Systems[i].Name == name {
			return &p.Systems[i], true
		}
	}
	return nil, false
}

// SemanticError reports a model-level problem.
type SemanticError struct {
	Line int
	Msg  string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("aadl: line %d: %s", e.Line, e.Msg)
}
