// Package faultinject is the deterministic fault-injection campaign layer.
// A Plan is a list of faults pinned to virtual-time offsets; Arm schedules
// them on a board's clock and injects them through narrow hooks exposed by
// the simulated kernels and the plant. The package touches neither wall
// clock nor randomness, so the same plan against the same scenario produces
// byte-identical results regardless of how many lab workers are in flight.
//
// The supported fault kinds cover the failure modes the paper's resilience
// argument cares about: driver death (crash), driver unresponsiveness
// (hang), sensor corruption (stuck-at, drift), transport faults (IPC drop
// and delay), physical actuator death (heater failure), and load (web
// request flood).
package faultinject

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Kind identifies a fault class.
type Kind string

// Fault kinds.
const (
	// KindDriverCrash kills the target process outright; recovery services
	// (MINIX RS, the seL4 monitor, the Linux supervisor) may reincarnate it.
	KindDriverCrash Kind = "driver-crash"
	// KindDriverHang black-holes all IPC to and from the target for
	// Duration: the process stays alive but stops responding.
	KindDriverHang Kind = "driver-hang"
	// KindSensorStuck freezes the temperature sensor at Value °C for
	// Duration (0 = permanently).
	KindSensorStuck Kind = "sensor-stuck"
	// KindSensorDrift biases the sensor by Value °C/s, accumulating over
	// Duration (0 = permanently).
	KindSensorDrift Kind = "sensor-drift"
	// KindIPCDrop silently drops messages from Src to Target for Duration.
	KindIPCDrop Kind = "ipc-drop"
	// KindIPCDelay delays messages from Src to Target by Delay for Duration.
	KindIPCDelay Kind = "ipc-delay"
	// KindHeaterFail makes the physical heater accept commands but produce
	// no heat for Duration (0 = permanently).
	KindHeaterFail Kind = "heater-fail"
	// KindWebFlood opens Count connections to the web interface at once,
	// each carrying one request, without ever reading the responses.
	KindWebFlood Kind = "web-flood"

	// Bus fault kinds act on the building's shared field network rather
	// than one board, and are applied by the BusInjector at the bus flush
	// barrier. Target names a bus node ("room02", "bms"); empty targets the
	// whole bus.

	// KindBusPartition holds every frame and dial touching the target node
	// for Duration — the link exists but carries nothing until it heals,
	// when held frames deliver in order.
	KindBusPartition Kind = "bus-partition"
	// KindBusDrop silently discards every frame touching the target node
	// for Duration (dials are refused, like a cut cable with RSTs).
	KindBusDrop Kind = "bus-drop"
	// KindBusDelay holds frames touching the target node for Delay of
	// virtual time before delivering them, for Duration.
	KindBusDelay Kind = "bus-delay"
	// KindBusDup delivers every frame touching the target node twice — a
	// chattering repeater — for Duration.
	KindBusDup Kind = "bus-dup"
	// KindHeadEndCrash kills the primary head-end BMS at At: it stops
	// polling permanently. Recovery is the standby's takeover.
	KindHeadEndCrash Kind = "headend-crash"
)

// knownKinds lists every kind for validation, sorted.
var knownKinds = []Kind{
	KindBusDelay, KindBusDrop, KindBusDup, KindBusPartition,
	KindDriverCrash, KindDriverHang, KindHeadEndCrash, KindHeaterFail,
	KindIPCDelay, KindIPCDrop, KindSensorDrift, KindSensorStuck, KindWebFlood,
}

// BusKind reports whether k is a bus-level fault (armed through the
// BusInjector at the building's flush barrier, not on one board).
func BusKind(k Kind) bool {
	switch k {
	case KindBusPartition, KindBusDrop, KindBusDelay, KindBusDup, KindHeadEndCrash:
		return true
	}
	return false
}

// Fault is one scheduled fault. At is a virtual-time offset from the instant
// the plan is armed (deployments arm at boot, so offsets are from boot).
type Fault struct {
	At       time.Duration `json:"at"`
	Kind     Kind          `json:"kind"`
	Target   string        `json:"target,omitempty"`
	Src      string        `json:"src,omitempty"`
	Duration time.Duration `json:"duration,omitempty"`
	Value    float64       `json:"value,omitempty"`
	Delay    time.Duration `json:"delay,omitempty"`
	Count    int           `json:"count,omitempty"`
}

// String renders "driver-crash tempSensProc @40m0s".
func (f Fault) String() string {
	s := string(f.Kind)
	if f.Target != "" {
		s += " " + f.Target
	}
	return fmt.Sprintf("%s @%s", s, f.At)
}

// Plan is a named fault schedule.
type Plan struct {
	Name   string  `json:"name"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault and normalises the plan: faults are stably
// sorted by (At, original index) so arming order — and therefore timer
// scheduling order at equal instants — is deterministic.
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("faultinject: fault %d: negative offset %s", i, f.At)
		}
		known := false
		for _, k := range knownKinds {
			if f.Kind == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("faultinject: fault %d: unknown kind %q (known: %v)", i, f.Kind, knownKinds)
		}
		switch f.Kind {
		case KindDriverCrash, KindDriverHang:
			if f.Target == "" {
				return fmt.Errorf("faultinject: fault %d: %s needs a target process", i, f.Kind)
			}
			if f.Kind == KindDriverHang && f.Duration <= 0 {
				return fmt.Errorf("faultinject: fault %d: driver-hang needs a positive duration", i)
			}
		case KindIPCDrop, KindIPCDelay:
			if f.Target == "" {
				return fmt.Errorf("faultinject: fault %d: %s needs a target (destination) process", i, f.Kind)
			}
			if f.Duration <= 0 {
				return fmt.Errorf("faultinject: fault %d: %s needs a positive duration", i, f.Kind)
			}
			if f.Kind == KindIPCDelay && f.Delay <= 0 {
				return fmt.Errorf("faultinject: fault %d: ipc-delay needs a positive delay", i)
			}
		case KindSensorDrift:
			if f.Value == 0 {
				return fmt.Errorf("faultinject: fault %d: sensor-drift needs a nonzero value (°C/s)", i)
			}
		case KindWebFlood:
			if f.Count <= 0 {
				return fmt.Errorf("faultinject: fault %d: web-flood needs a positive count", i)
			}
		case KindBusPartition, KindBusDrop, KindBusDup:
			if f.Duration <= 0 {
				return fmt.Errorf("faultinject: fault %d: %s needs a positive duration", i, f.Kind)
			}
		case KindBusDelay:
			if f.Duration <= 0 {
				return fmt.Errorf("faultinject: fault %d: bus-delay needs a positive duration", i)
			}
			if f.Delay <= 0 {
				return fmt.Errorf("faultinject: fault %d: bus-delay needs a positive delay", i)
			}
		}
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].At < p.Faults[j].At })
	return nil
}

// ParsePlan decodes a JSON plan and validates it.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultinject: bad plan JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// JSON renders the plan as indented JSON with a trailing newline.
func (p *Plan) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Builtin plans. Offsets leave the scenario's 30-minute settling phase
// undisturbed so safety verdicts isolate the fault response, not the warmup.
var builtins = map[string]*Plan{
	"none": {Name: "none"},
	"crash-sensor": {Name: "crash-sensor", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindDriverCrash, Target: "tempSensProc"},
	}},
	"crash-sensor-repeat": {Name: "crash-sensor-repeat", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindDriverCrash, Target: "tempSensProc"},
		{At: 70 * time.Minute, Kind: KindDriverCrash, Target: "tempSensProc"},
		{At: 100 * time.Minute, Kind: KindDriverCrash, Target: "tempSensProc"},
	}},
	"hang-sensor": {Name: "hang-sensor", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindDriverHang, Target: "tempSensProc", Duration: 2 * time.Minute},
	}},
	"stuck-sensor": {Name: "stuck-sensor", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindSensorStuck, Value: 22, Duration: 20 * time.Minute},
	}},
	"drift-sensor": {Name: "drift-sensor", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindSensorDrift, Value: 0.01, Duration: 10 * time.Minute},
	}},
	"heater-fail": {Name: "heater-fail", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindHeaterFail, Duration: 30 * time.Minute},
	}},
	"drop-sensor-ipc": {Name: "drop-sensor-ipc", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindIPCDrop, Src: "tempSensProc", Target: "tempProc", Duration: 90 * time.Second},
	}},
	"delay-sensor-ipc": {Name: "delay-sensor-ipc", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindIPCDelay, Src: "tempSensProc", Target: "tempProc", Duration: 2 * time.Minute, Delay: 250 * time.Millisecond},
	}},
	"web-flood": {Name: "web-flood", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindWebFlood, Count: 32},
	}},
	"bus-partition": {Name: "bus-partition", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindBusPartition, Target: "room01", Duration: 10 * time.Minute},
	}},
	"bus-drop": {Name: "bus-drop", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindBusDrop, Target: "room01", Duration: 5 * time.Minute},
	}},
	"bus-delay": {Name: "bus-delay", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindBusDelay, Target: "room01", Duration: 5 * time.Minute, Delay: 3 * time.Second},
	}},
	"bus-dup": {Name: "bus-dup", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindBusDup, Target: "room01", Duration: 5 * time.Minute},
	}},
	"headend-kill": {Name: "headend-kill", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindHeadEndCrash},
	}},
	// partition-failover is the E15 plan: one room rides out a bus partition
	// in degraded mode, then the primary head-end dies and the standby takes
	// over. Offsets keep the two faults disjoint so MTTR attributes cleanly.
	"partition-failover": {Name: "partition-failover", Faults: []Fault{
		{At: 40 * time.Minute, Kind: KindBusPartition, Target: "room01", Duration: 10 * time.Minute},
		{At: 65 * time.Minute, Kind: KindHeadEndCrash},
	}},
}

// Register adds (or replaces) a named plan in the registry, so
// operator-supplied plan files participate in sweeps exactly like builtins.
// Call it during setup, before any sweep validation or run: the registry is
// not synchronised.
func Register(p *Plan) error {
	if p.Name == "" {
		return fmt.Errorf("faultinject: plan has no name")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	builtins[p.Name] = p
	return nil
}

// Lookup resolves a builtin plan by name. The returned plan is a deep copy:
// arming mutates nothing shared.
func Lookup(name string) (*Plan, error) {
	p, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("faultinject: unknown plan %q (known: %v)", name, Names())
	}
	cp := &Plan{Name: p.Name, Faults: append([]Fault(nil), p.Faults...)}
	return cp, nil
}

// Names lists the builtin plan names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
