// Command polcheck is the cross-platform IPC policy static analyzer: it
// normalises the MINIX access control matrix, the seL4 CapDL capability
// distribution, and the Linux DAC queue-permission model into one access
// graph and proves (or refutes) the scenario's security properties without
// booting a kernel.
//
// Usage:
//
//	polcheck -scenario tempcontrol            analyze the built-in scenario on
//	                                          every platform and check each
//	                                          verdict against the paper's
//	                                          outcome table (exit 1 on mismatch)
//	polcheck -aadl model.aadl [-system name]  analyze a compiled AADL model
//	polcheck -props file                      replace the built-in property set
//	polcheck -json                            machine-readable reports
//	polcheck -lint                            include structural lint findings
//	polcheck -audit                           additionally run the MINIX
//	                                          deployment and diff static grants
//	                                          against observed IPC usage
//	polcheck -audit -strict -allow FILE       enforce the audit: exit nonzero
//	                                          on unused grants outside FILE,
//	                                          or stale FILE entries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"mkbas/internal/aadl"
	"mkbas/internal/bas"
	"mkbas/internal/camkes"
	"mkbas/internal/core"
	"mkbas/internal/machine"
	"mkbas/internal/polcheck"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "polcheck:", err)
		os.Exit(1)
	}
}

// platformCase is one policy graph plus the verdict the paper's outcome
// table expects for it under the scenario properties.
type platformCase struct {
	label      string
	graph      *polcheck.Graph
	expectPass bool
}

func run() error {
	scenario := flag.String("scenario", "", "built-in scenario to analyze (tempcontrol)")
	aadlPath := flag.String("aadl", "", "AADL model to compile and analyze instead of a built-in scenario")
	system := flag.String("system", "", "system implementation inside -aadl (default: the model's only one)")
	propsPath := flag.String("props", "", "property file overriding the built-in scenario property set")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports")
	lint := flag.Bool("lint", false, "include structural lint findings in each report")
	audit := flag.Bool("audit", false, "run the MINIX deployment and report granted-but-unused rights")
	runFor := flag.Duration("run", 2*time.Minute, "virtual time to run the deployment for -audit")
	strict := flag.Bool("strict", false, "with -audit: exit nonzero on unused grants outside the -allow allowlist")
	allowPath := flag.String("allow", "", "allowlist for -audit -strict: one accepted unused_grant(...) check per line, # comments")
	tenant := flag.Bool("tenant", false, "include the tenant-API-gateway-extended policy: adds the minix-acm-tenant static case and audits the deployment under the extended matrix")
	flag.Parse()

	props := bas.ScenarioProperties()
	checkExpectations := *propsPath == ""
	if *propsPath != "" {
		text, err := os.ReadFile(*propsPath)
		if err != nil {
			return err
		}
		props, err = polcheck.ParseProperties(string(text))
		if err != nil {
			return err
		}
	}

	var cases []platformCase
	switch {
	case *aadlPath != "":
		g, err := aadlGraph(*aadlPath, *system)
		if err != nil {
			return err
		}
		cases = []platformCase{{label: g.Platform, graph: g, expectPass: true}}
	case *scenario == "tempcontrol":
		var err error
		cases, err = tempcontrolCases(*tenant)
		if err != nil {
			return err
		}
	case *scenario == "":
		return fmt.Errorf("pick -scenario tempcontrol or -aadl <model>")
	default:
		return fmt.Errorf("unknown scenario %q (have: tempcontrol)", *scenario)
	}

	var reports []*polcheck.Report
	mismatches := 0
	for _, c := range cases {
		report := polcheck.CheckProperties(c.graph, props)
		if *lint {
			report.Add(polcheck.StructuralFindings(c.graph)...)
		}
		report.Platform = c.label
		reports = append(reports, report)
		if checkExpectations && report.Pass() != c.expectPass {
			mismatches++
		}
	}

	if *jsonOut {
		out, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		for _, r := range reports {
			fmt.Print(r.Text())
			fmt.Println()
		}
	}

	if *audit {
		if err := runAudit(*runFor, *jsonOut, *strict, *allowPath, *tenant); err != nil {
			return err
		}
	}

	if checkExpectations {
		if mismatches > 0 {
			return fmt.Errorf("%d platform verdict(s) deviate from the paper's outcome table", mismatches)
		}
		if !*jsonOut {
			fmt.Println("verdicts match the paper's outcome table: microkernel policies hold, Linux DAC does not")
		}
	}
	return nil
}

// tempcontrolCases builds the scenario's policy graphs for every platform
// with the paper's expected verdicts: both microkernel policies satisfy the
// properties; the Linux same-account and root-escalated deployments violate
// them; the hardened unique-account deployment passes statically until root
// bypasses DAC.
func tempcontrolCases(tenant bool) ([]platformCase, error) {
	cfg := bas.DefaultScenario()
	spec, err := camkes.GenerateSpec(bas.ScenarioAssembly(cfg, nil))
	if err != nil {
		return nil, fmt.Errorf("generating capdl spec: %w", err)
	}
	dac := func(label string, hardened, webRoot bool) platformCase {
		g := polcheck.FromDAC(bas.LinuxScenarioDAC(hardened, webRoot))
		g.Platform = label
		return platformCase{label: label, graph: g, expectPass: false}
	}
	hardened := dac("linux-dac-hardened", true, false)
	hardened.expectPass = true
	cases := []platformCase{
		{label: "minix-acm", graph: polcheck.FromPolicy(core.ScenarioPolicy()), expectPass: true},
		{label: "sel4-capdl", graph: polcheck.FromCapDL(spec), expectPass: true},
		dac("linux-dac-default", false, false),
		dac("linux-dac-root", false, true),
		hardened,
		dac("linux-dac-hardened-root", true, true),
	}
	if tenant {
		// The tenant-gateway-extended matrix must satisfy the same property
		// set: the gateway's in-band grants do not open web→plant paths.
		cases = append(cases, platformCase{
			label:      "minix-acm-tenant",
			graph:      polcheck.FromPolicy(core.ScenarioPolicyWithTenantGateway()),
			expectPass: true,
		})
	}
	return cases, nil
}

// aadlGraph compiles an AADL model and normalises its generated matrix.
func aadlGraph(path, system string) (*polcheck.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pkg, err := aadl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if system == "" {
		if len(pkg.Systems) != 1 {
			return nil, fmt.Errorf("model has %d system implementations; pick one with -system", len(pkg.Systems))
		}
		system = pkg.Systems[0].Name
	}
	m, err := aadl.GenerateACM(pkg, system)
	if err != nil {
		return nil, err
	}
	g := polcheck.FromMatrix(m)
	g.Platform = "aadl-acm:" + system
	return g, nil
}

// runAudit boots the MINIX scenario, runs it for a stretch of virtual time,
// and diffs the matrix against the IPC usage the board recorded. The run is
// sliced: the live log is folded into an aggregate and reset between
// slices, so usage gathered across several runs audits as one corpus.
//
// In strict mode the audit is a lint gate, not an advisory report: every
// unused grant must be covered by the allowlist (each line an accepted
// unused_grant(...) check), and allowlist entries the audit no longer
// produces are themselves errors — the allowlist must shrink with the
// policy, or it rots into a bypass.
func runAudit(runFor time.Duration, jsonOut, strict bool, allowPath string, tenant bool) error {
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	policy := core.ScenarioPolicy()
	label := "minix scenario"
	if tenant {
		// Audit under the tenant-gateway-extended matrix: the gateway is a
		// host-side subject that never performs board IPC itself, so its
		// grants audit as unused by construction — the allowlist records the
		// rationale for each one.
		policy = core.ScenarioPolicyWithTenantGateway()
		label = "minix scenario (tenant-gateway matrix)"
	}
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{Policy: policy}); err != nil {
		return err
	}
	const slices = 2
	combined := machine.NewIPCLog()
	for i := 0; i < slices; i++ {
		tb.Machine.Run(runFor / slices)
		combined.Merge(tb.Machine.IPC())
		tb.Machine.IPC().Reset()
	}
	findings := polcheck.AuditMatrix(policy.IPC, combined)
	if jsonOut {
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("least-privilege audit: %s, %s of virtual time over %d slices, %d unused grant(s)\n",
			label, runFor, slices, len(findings))
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if !strict {
		return nil
	}
	allowed, err := loadAllowlist(allowPath)
	if err != nil {
		return err
	}
	var unexpected []string
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		seen[f.Check] = true
		if !allowed[f.Check] {
			unexpected = append(unexpected, f.Check)
		}
	}
	var stale []string
	for check := range allowed {
		if !seen[check] {
			stale = append(stale, check)
		}
	}
	sort.Strings(stale)
	for _, check := range unexpected {
		fmt.Fprintf(os.Stderr, "polcheck: unallowed unused grant: %s\n", check)
	}
	for _, check := range stale {
		fmt.Fprintf(os.Stderr, "polcheck: stale allowlist entry (grant now used or removed): %s\n", check)
	}
	if len(unexpected) > 0 || len(stale) > 0 {
		return fmt.Errorf("least-privilege lint failed: %d unallowed grant(s), %d stale allowlist entr(ies)",
			len(unexpected), len(stale))
	}
	if !jsonOut {
		fmt.Printf("least-privilege lint: all %d unused grant(s) covered by allowlist\n", len(findings))
	}
	return nil
}

// loadAllowlist reads an audit allowlist: one accepted check string per
// line, blank lines and #-comments ignored. An empty path means an empty
// allowlist (every finding fails strict mode).
func loadAllowlist(path string) (map[string]bool, error) {
	out := make(map[string]bool)
	if path == "" {
		return out, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "unused_grant(") || !strings.HasSuffix(line, ")") {
			return nil, fmt.Errorf("%s:%d: allowlist entry %q is not an unused_grant(...) check", path, i+1, line)
		}
		out[line] = true
	}
	return out, nil
}
