package minix

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestGrantBulkTransfer(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	payload := []byte("a log line far larger than the fixed 56-byte message payload could ever carry")
	var received []byte
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		msg, err := api.Receive(EndpointAny)
		if err != nil {
			return
		}
		id := GrantID(msg.U32(0))
		length := int(msg.U32(4))
		data, err := api.SafeCopyFrom(msg.Source, id, 0, length)
		if err != nil {
			t.Errorf("safecopyfrom: %v", err)
			return
		}
		received = data
		_ = api.Send(msg.Source, NewMessage(0))
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		id, err := api.GrantCreate(payload, GrantRead, dst)
		if err != nil {
			t.Errorf("grantcreate: %v", err)
			return
		}
		msg := NewMessage(1)
		msg.PutU32(0, uint32(id))
		msg.PutU32(4, uint32(len(payload)))
		if _, err := api.SendRec(dst, msg); err != nil {
			t.Errorf("sendrec: %v", err)
		}
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %q", received)
	}
}

func TestGrantWriteBackVisibleToGrantor(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	buf := make([]byte, 16)
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		msg, err := api.Receive(EndpointAny)
		if err != nil {
			return
		}
		id := GrantID(msg.U32(0))
		if err := api.SafeCopyTo(msg.Source, id, 4, []byte("WXYZ")); err != nil {
			t.Errorf("safecopyto: %v", err)
		}
		_ = api.Send(msg.Source, NewMessage(0))
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		id, _ := api.GrantCreate(buf, GrantRead|GrantWrite, dst)
		msg := NewMessage(1)
		msg.PutU32(0, uint32(id))
		api.SendRec(dst, msg)
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if string(buf[4:8]) != "WXYZ" {
		t.Fatalf("grantor buffer = %q, write-through failed", buf)
	}
}

func TestGrantChecks(t *testing.T) {
	// One board, three processes: A grants read-only to B; C is an
	// interloper.
	policy := multiPolicy() // B->A, C->A type 1
	m, k := testBoard(t, policy, Config{})
	buf := []byte("secret-region")
	var (
		outOfBounds, writeDenied, wrongGrantee, revoked error
		aEP                                             Endpoint
		id                                              GrantID
	)
	k.RegisterImage(Image{Name: "a", Priority: 6, Body: func(api *API) {
		aEP = api.Self()
		bEP, _ := api.Lookup("b")
		var err error
		id, err = api.GrantCreate(buf, GrantRead, bEP)
		if err != nil {
			t.Errorf("grantcreate: %v", err)
		}
		api.Sleep(50 * time.Millisecond)
		if err := api.GrantRevoke(id); err != nil {
			t.Errorf("revoke: %v", err)
		}
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond)
		if _, err := api.SafeCopyFrom(aEP, id, 0, 5); err != nil {
			t.Errorf("legit read: %v", err)
		}
		_, outOfBounds = api.SafeCopyFrom(aEP, id, 8, 100)
		writeDenied = api.SafeCopyTo(aEP, id, 0, []byte("x"))
		api.Sleep(100 * time.Millisecond) // grant revoked meanwhile
		_, revoked = api.SafeCopyFrom(aEP, id, 0, 1)
	}})
	k.RegisterImage(Image{Name: "c", Priority: 7, Body: func(api *API) {
		api.Sleep(20 * time.Millisecond)
		_, wrongGrantee = api.SafeCopyFrom(aEP, id, 0, 5)
	}})
	spawnOrFatal(t, k, "a", acidA)
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "c", acidC)
	m.Run(time.Second)
	if !errors.Is(outOfBounds, ErrGrantBounds) {
		t.Errorf("out of bounds = %v, want ErrGrantBounds", outOfBounds)
	}
	if !errors.Is(writeDenied, ErrGrantAccess) {
		t.Errorf("write = %v, want ErrGrantAccess", writeDenied)
	}
	if !errors.Is(wrongGrantee, ErrNotGrantee) {
		t.Errorf("interloper = %v, want ErrNotGrantee", wrongGrantee)
	}
	if !errors.Is(revoked, ErrBadGrant) {
		t.Errorf("revoked = %v, want ErrBadGrant", revoked)
	}
}

func TestGrantDiesWithGrantor(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var copyErr error
	var aEP Endpoint
	var id GrantID
	k.RegisterImage(Image{Name: "a", Priority: 6, Body: func(api *API) {
		aEP = api.Self()
		bEP, _ := api.Lookup("b")
		id, _ = api.GrantCreate(make([]byte, 8), GrantRead, bEP)
		api.Sleep(10 * time.Millisecond)
		api.Exit()
	}})
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Sleep(50 * time.Millisecond) // a is gone now
		_, copyErr = api.SafeCopyFrom(aEP, id, 0, 4)
	}})
	spawnOrFatal(t, k, "a", acidA)
	spawnOrFatal(t, k, "b", acidB)
	m.Run(time.Second)
	if !errors.Is(copyErr, ErrDeadSrcDst) {
		t.Fatalf("copy from dead grantor = %v, want ErrDeadSrcDst", copyErr)
	}
}

func TestGrantTableLimit(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var overflowErr error
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		buf := make([]byte, 4)
		for i := 0; i < maxGrantsPerProc; i++ {
			if _, err := api.GrantCreate(buf, GrantRead, api.Self()); err != nil {
				t.Errorf("grant %d: %v", i, err)
				return
			}
		}
		_, overflowErr = api.GrantCreate(buf, GrantRead, api.Self())
	}})
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(overflowErr, ErrGrantExceeded) {
		t.Fatalf("overflow = %v, want ErrGrantExceeded", overflowErr)
	}
}
