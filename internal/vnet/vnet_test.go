package vnet

import (
	"bytes"
	"errors"
	"testing"
)

func TestListenDialAccept(t *testing.T) {
	s := NewStack()
	l, err := s.Listen(8080)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	host, err := s.Dial(8080)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	board, err := s.Accept(l)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}

	if err := host.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
		t.Fatalf("host write: %v", err)
	}
	got, err := s.BoardRead(board, 0)
	if err != nil {
		t.Fatalf("board read: %v", err)
	}
	if !bytes.Contains(got, []byte("GET /")) {
		t.Fatalf("board read = %q", got)
	}

	if err := s.BoardWrite(board, []byte("200 OK")); err != nil {
		t.Fatalf("board write: %v", err)
	}
	if resp := host.ReadAll(); string(resp) != "200 OK" {
		t.Fatalf("host read = %q", resp)
	}
}

func TestDialWithoutListener(t *testing.T) {
	s := NewStack()
	if _, err := s.Dial(9); !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestDoubleListen(t *testing.T) {
	s := NewStack()
	if _, err := s.Listen(80); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := s.Listen(80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestAcceptWouldBlockAndWaiter(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	if _, err := s.Accept(l); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
	fired := false
	s.WaitConn(l, func() { fired = true })
	if fired {
		t.Fatal("waiter fired before connection")
	}
	if _, err := s.Dial(80); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if !fired {
		t.Fatal("waiter did not fire on dial")
	}
	if _, err := s.Accept(l); err != nil {
		t.Fatalf("Accept after waiter: %v", err)
	}
}

func TestWaitConnImmediateWhenPending(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	if _, err := s.Dial(80); err != nil {
		t.Fatal(err)
	}
	fired := false
	s.WaitConn(l, func() { fired = true })
	if !fired {
		t.Fatal("waiter should fire immediately with pending backlog")
	}
}

func TestReadWaiter(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	host, _ := s.Dial(80)
	board, _ := s.Accept(l)

	if _, err := s.BoardRead(board, 0); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
	fired := false
	s.WaitReadable(board, func() { fired = true })
	if err := host.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("read waiter did not fire")
	}
	got, err := s.BoardRead(board, 0)
	if err != nil || string(got) != "x" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestReadMaxBytes(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	host, _ := s.Dial(80)
	board, _ := s.Accept(l)
	if err := host.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got, err := s.BoardRead(board, 4)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("read = %q, %v", got, err)
	}
	got, err = s.BoardRead(board, 4)
	if err != nil || string(got) != "ef" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestHostCloseGivesBoardEOF(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	host, _ := s.Dial(80)
	board, _ := s.Accept(l)
	host.Write([]byte("tail"))
	host.Close()
	got, err := s.BoardRead(board, 0)
	if err != nil || string(got) != "tail" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := s.BoardRead(board, 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed after EOF", err)
	}
}

func TestBoardCloseObservedByHost(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	host, _ := s.Dial(80)
	board, _ := s.Accept(l)
	s.BoardWrite(board, []byte("bye"))
	s.BoardClose(board)
	if got := host.ReadAll(); string(got) != "bye" {
		t.Fatalf("host read = %q", got)
	}
	if !host.Closed() {
		t.Fatal("host did not observe close")
	}
	if err := host.Write([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("write after close err = %v", err)
	}
}

func TestBacklogLimit(t *testing.T) {
	s := NewStack()
	if _, err := s.Listen(80); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < backlogMax; i++ {
		if _, err := s.Dial(80); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if _, err := s.Dial(80); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("err = %v, want ErrBacklogFull", err)
	}
}

func TestCloseListenerRefusesBacklog(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80)
	host, _ := s.Dial(80)
	s.CloseListener(l)
	if err := host.Write([]byte("x")); err == nil {
		t.Fatal("write to refused connection succeeded")
	}
	// Port is free again.
	if _, err := s.Listen(80); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
}

func TestBacklogDrainsAfterAccept(t *testing.T) {
	// The bus retries refused dials on fresh connections, so a listener that
	// was briefly saturated must become dialable again once the board accepts.
	s := NewStack()
	l, err := s.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < backlogMax; i++ {
		if _, err := s.Dial(80); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if _, err := s.Dial(80); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("saturated dial err = %v, want ErrBacklogFull", err)
	}
	if _, err := s.Accept(l); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dial(80); err != nil {
		t.Fatalf("dial after drain: %v", err)
	}
}
