package polcheck_test

// Acceptance tests for the cross-platform analyzer over the shipped
// tempcontrol scenario: the paper's outcome table, proven statically. These
// live in an external test package so they can import internal/bas (which
// itself imports polcheck for the deploy gate) without a cycle.

import (
	"strings"
	"testing"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/camkes"
	"mkbas/internal/core"
	"mkbas/internal/polcheck"
)

func scenarioGraphs(t *testing.T) (minix, sel4 *polcheck.Graph) {
	t.Helper()
	spec, err := camkes.GenerateSpec(bas.ScenarioAssembly(bas.DefaultScenario(), nil))
	if err != nil {
		t.Fatalf("GenerateSpec: %v", err)
	}
	return polcheck.FromPolicy(core.ScenarioPolicy()), polcheck.FromCapDL(spec)
}

// TestMicrokernelPoliciesSatisfyScenarioContract is the tentpole acceptance
// criterion: both microkernel policy formalisms prove the attack-denying
// properties with no kernel booted.
func TestMicrokernelPoliciesSatisfyScenarioContract(t *testing.T) {
	minixG, sel4G := scenarioGraphs(t)
	for _, g := range []*polcheck.Graph{minixG, sel4G} {
		report := polcheck.CheckProperties(g, bas.ScenarioProperties())
		if !report.Pass() {
			t.Errorf("%s: scenario contract failed:\n%s", g.Platform, report.Text())
		}
	}
}

// TestLinuxRootDACViolatesScenarioContract: the root-escalated Linux model
// fails exactly the properties the paper's attacks exploit.
func TestLinuxRootDACViolatesScenarioContract(t *testing.T) {
	g := polcheck.FromDAC(bas.LinuxScenarioDAC(false, true))
	deny := polcheck.DenyPath{From: bas.NameWebInterface, To: bas.NameHeaterAct}.Check(g)
	if deny.Severity != polcheck.SeverityViolation {
		t.Errorf("deny_path: %s (%s)", deny.Severity, deny.Detail)
	}
	if len(deny.Path) == 0 {
		t.Error("violation must carry a witness path")
	}
	kill := polcheck.NoKillAuthority{
		Subject: bas.NameWebInterface, Target: bas.NameTempControl,
	}.Check(g)
	if kill.Severity != polcheck.SeverityViolation {
		t.Errorf("no_kill_authority: %s (%s)", kill.Severity, kill.Detail)
	}
	if !strings.Contains(kill.Detail, "uid 0") {
		t.Errorf("kill violation should blame root: %s", kill.Detail)
	}
}

// TestLinuxDefaultAndHardenedVerdicts: same-account Linux fails; hardened
// unique-account Linux passes statically (until root, tested above) — the
// paper's "unless each process runs under a unique user account" remark.
func TestLinuxDefaultAndHardenedVerdicts(t *testing.T) {
	props := bas.ScenarioProperties()
	def := polcheck.CheckProperties(polcheck.FromDAC(bas.LinuxScenarioDAC(false, false)), props)
	if def.Pass() {
		t.Error("same-account Linux deployment must violate the contract")
	}
	hard := polcheck.CheckProperties(polcheck.FromDAC(bas.LinuxScenarioDAC(true, false)), props)
	if !hard.Pass() {
		t.Errorf("hardened Linux deployment should pass statically:\n%s", hard.Text())
	}
	hardRoot := polcheck.CheckProperties(polcheck.FromDAC(bas.LinuxScenarioDAC(true, true)), props)
	if hardRoot.Pass() {
		t.Error("root bypasses DAC even in the hardened deployment")
	}
}

// TestMediatedFlowIsNotAViolation: on every platform information CAN flow
// web → controller → heater (that is the system working); DenyPath must
// distinguish that mediated route from direct attacker authority.
func TestMediatedFlowIsNotAViolation(t *testing.T) {
	minixG, sel4G := scenarioGraphs(t)
	for _, g := range []*polcheck.Graph{minixG, sel4G} {
		if _, ok := g.Reachable(bas.NameWebInterface, bas.NameHeaterAct, polcheck.ReachTransitive); !ok {
			t.Errorf("%s: web must transitively reach the heater via the controller", g.Platform)
		}
		if _, ok := g.Reachable(bas.NameWebInterface, bas.NameHeaterAct, polcheck.ReachDirect); ok {
			t.Errorf("%s: web must NOT directly reach the heater", g.Platform)
		}
	}
}

// TestDeployMinixGateRejectsOverbroadPolicy: the pre-deploy gate refuses a
// matrix that hands the web interface direct actuator authority.
func TestDeployMinixGateRejectsOverbroadPolicy(t *testing.T) {
	bad := core.ScenarioPolicy()
	ipc := bad.IPC.Clone()
	ipc.Allow(core.ACIDWebInterface, core.ACIDHeaterAct, core.MsgHeaterCmd)
	ipc.Seal()
	bad.IPC = ipc

	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	_, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{Policy: bad})
	if err == nil {
		t.Fatal("gate should reject the over-permissive matrix")
	}
	if !strings.Contains(err.Error(), "deny_path(webInterface, heaterActProc)") {
		t.Fatalf("gate error should name the violated property: %v", err)
	}

	// The same policy deploys when the gate is explicitly skipped.
	tb2 := bas.NewTestbed(cfg)
	if _, err := bas.Deploy(bas.PlatformMinix, tb2, cfg, bas.DeployOptions{Policy: bad, SkipPolicyCheck: true}); err != nil {
		t.Fatalf("SkipPolicyCheck deploy: %v", err)
	}
}

// TestAuditAgainstLiveMinixRun drives the deployed scenario and diffs the
// static matrix against the recorded IPC usage: exercised grants disappear
// from the audit, unexercised ones (the alarm path in a calm room, the ack
// the controller never sends the sensor) remain.
func TestAuditAgainstLiveMinixRun(t *testing.T) {
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	policy := core.ScenarioPolicy()
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{Policy: policy}); err != nil {
		t.Fatal(err)
	}
	tb.Machine.Run(30 * time.Second)

	log := tb.Machine.IPC()
	if !log.Used(bas.NameTempSensor, bas.NameTempControl, "mt1") {
		t.Fatalf("sensor samples should be recorded; log: %+v", log.Usages())
	}
	findings := polcheck.AuditMatrix(policy.IPC, log)
	unused := make(map[string]bool, len(findings))
	for _, f := range findings {
		unused[f.Check] = true
	}
	if unused["unused_grant(tempSensProc, tempProc, mt1)"] {
		t.Error("the exercised sensor grant must not be flagged")
	}
	if !unused["unused_grant(tempProc, alarmProc, mt3)"] {
		t.Errorf("the calm room never trips the alarm; expected that grant flagged, got %+v", findings)
	}
}
