package bas

import (
	"fmt"
	"strconv"

	"mkbas/internal/httpmini"
)

// ControlClient is the web interface's view of the controller, implemented
// per platform over the respective IPC mechanism.
type ControlClient interface {
	// Status queries the controller's current state.
	Status() (Status, error)
	// SetSetpoint proposes a new desired temperature.
	SetSetpoint(v float64) error
}

// MetricsSource supplies the Prometheus text exposition served at
// GET /metrics. *obs.Registry implements it; a nil source disables the
// route (the microkernel deployments keep kernel state off the web
// surface, so only the Linux deployment wires one up).
type MetricsSource interface {
	PromText() string
}

// HandleRequest implements the web interface's HTTP routing, shared by all
// three platforms:
//
//	GET  /           — usage text
//	GET  /status     — controller status line
//	GET  /metrics    — Prometheus text exposition (if a source is wired)
//	POST /setpoint   — value=<float> form field sets a new setpoint
func HandleRequest(req *httpmini.Request, ctrl ControlClient, metrics MetricsSource) *httpmini.Response {
	switch {
	case req.Method == "GET" && req.Path == "/":
		return httpmini.Text(200,
			"BAS temperature controller\n"+
				"GET /status — current state\n"+
				"GET /metrics — Prometheus metrics\n"+
				"POST /setpoint value=<°C> — change setpoint\n")
	case req.Method == "GET" && req.Path == "/metrics":
		if metrics == nil {
			return httpmini.Text(404, "not found\n")
		}
		return httpmini.Text(200, metrics.PromText())
	case req.Method == "GET" && req.Path == "/status":
		st, err := ctrl.Status()
		if err != nil {
			return httpmini.Text(500, fmt.Sprintf("controller unavailable: %v\n", err))
		}
		return httpmini.Text(200, st.String()+"\n")
	case req.Method == "POST" && req.Path == "/setpoint":
		raw := req.FormValue("value")
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return httpmini.Text(400, fmt.Sprintf("bad setpoint %q\n", raw))
		}
		if err := ctrl.SetSetpoint(v); err != nil {
			return httpmini.Text(400, fmt.Sprintf("rejected: %v\n", err))
		}
		return httpmini.Text(200, fmt.Sprintf("setpoint=%.2f\n", v))
	case req.Method == "GET":
		return httpmini.Text(404, "not found\n")
	default:
		return httpmini.Text(405, "method not allowed\n")
	}
}

// NetConn abstracts one accepted connection for the shared server loop.
type NetConn interface {
	Read(max int) ([]byte, error)
	Write(data []byte) error
	Close() error
}

// NetListener abstracts the platform listener.
type NetListener interface {
	Accept() (NetConn, error)
}

// ServeWeb is the web interface's main loop, shared by all platforms: accept
// a connection, parse one or more HTTP requests off it, answer each, close.
// It returns when Accept fails (listener torn down).
func ServeWeb(l NetListener, ctrl ControlClient, metrics MetricsSource) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		serveConn(conn, ctrl, metrics)
	}
}

// serveConn handles one connection until EOF or a protocol error.
func serveConn(conn NetConn, ctrl ControlClient, metrics MetricsSource) {
	defer conn.Close()
	var parser httpmini.Parser
	for {
		req, err := parser.Next()
		if err != nil {
			conn.Write(httpmini.Text(400, "malformed request\n").Render())
			return
		}
		if req != nil {
			resp := HandleRequest(req, ctrl, metrics)
			if err := conn.Write(resp.Render()); err != nil {
				return
			}
			continue
		}
		data, err := conn.Read(0)
		if err != nil {
			return // EOF or reset
		}
		parser.Feed(data)
	}
}
