// Multizone: a small building. A BAS is a *distributed* CPS — one controller
// per zone, each an independent embedded board running the microkernel
// platform, supervised over the IT network. This example runs three zones
// with different thermal characteristics and setpoints, injects a heater
// fault into one, and prints the building dashboard an operator would see.
//
//	go run ./examples/multizone
package main

import (
	"fmt"
	"os"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/safety"
)

// zone is one room + controller board.
type zone struct {
	name     string
	setpoint string
	tb       *bas.Testbed
	mon      *safety.Monitor
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multizone:", err)
		os.Exit(1)
	}
}

func run() error {
	specs := []struct {
		name     string
		initial  float64
		ambient  float64
		setpoint string
	}{
		{"lab-wing", 18, 15, "22"},
		{"office", 21, 17, "24"},
		{"bsl3-suite", 19, 14, "21"},
	}

	var zones []*zone
	for i, spec := range specs {
		cfg := bas.DefaultScenario()
		cfg.Seed = int64(i + 1)
		cfg.Plant.InitialTemp = spec.initial
		cfg.Plant.Ambient = spec.ambient
		tb := bas.NewTestbed(cfg)
		defer tb.Machine.Shutdown()
		if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{}); err != nil {
			return fmt.Errorf("zone %s: %w", spec.name, err)
		}
		monCfg := safety.DefaultConfig()
		mon := safety.Attach(tb.Machine.Clock(), tb.Room, monCfg)
		zones = append(zones, &zone{name: spec.name, setpoint: spec.setpoint, tb: tb, mon: mon})
	}

	// Let every zone boot, then push its setpoint through its web
	// interface, like a building management system would.
	for _, z := range zones {
		z.tb.Machine.Run(5 * time.Second)
		if _, _, err := z.tb.HTTPPostSetpoint(z.setpoint); err != nil {
			return fmt.Errorf("zone %s setpoint: %w", z.name, err)
		}
		z.mon.SetSetpoint(parseFloat(z.setpoint))
	}

	// Fault injection: the BSL-3 suite's heater fails one hour in. Its
	// controller must raise the alarm; the other zones stay healthy.
	zones[2].tb.Machine.Clock().After(time.Hour, func() {
		zones[2].tb.Room.FailHeater(true)
	})

	// Advance the whole building in lockstep, printing the dashboard.
	fmt.Printf("%-12s %-10s %-10s %-8s %-8s %s\n", "zone", "temp", "setpoint", "heater", "alarm", "violations")
	for step := 1; step <= 4; step++ {
		for _, z := range zones {
			z.tb.Machine.Run(45 * time.Minute)
		}
		fmt.Printf("--- t = %s ---\n", zones[0].tb.Machine.Clock().Now())
		for _, z := range zones {
			_, body, err := z.tb.HTTPGet("/status")
			if err != nil {
				body = "unreachable: " + err.Error()
			}
			fmt.Printf("%-12s room=%.2f°C  %s", z.name, z.tb.Room.Temperature(), body)
			if n := len(z.mon.Violations()); n > 0 {
				fmt.Printf("%-12s   ^ %d safety violations recorded\n", "", n)
			}
		}
	}

	fmt.Println()
	for _, z := range zones {
		fmt.Printf("%s: alarm=%v heater-failed=%v violations=%d\n",
			z.name, z.tb.Room.AlarmOn(), z.tb.Room.HeaterFailed(), len(z.mon.Violations()))
	}
	if !zones[2].tb.Room.AlarmOn() {
		return fmt.Errorf("bsl3-suite alarm should be on after the heater fault")
	}
	fmt.Println("\nthe faulted zone alarmed; the healthy zones held their setpoints")
	return nil
}

func parseFloat(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%g", &v)
	return v
}
