// Package tenantapi is the occupant-scale, tenant-facing API tier in front
// of the head-end: deterministic token sessions, a three-role authorisation
// model certified as a polcheck access graph, per-principal token-bucket
// rate limiting, and connection backpressure — all in virtual time, so a
// million-request campaign is a pure function of (config, seed).
//
// The paper's untrusted component is one web interface; a production BAS
// fronts thousands of occupants, facility managers, and vendor technicians
// behind authenticated APIs (sc-bos guards its supervisory APIs with
// OAuth2/OIDC + role-based access). This package grows that surface while
// keeping the repo's two core disciplines: the request hot path allocates
// nothing (gated by TestAPIHotPathZeroAlloc), and every denial is a typed
// security event naming the mediating layer — session-auth, rbac,
// rate-limit, backpressure, or policy-monitor — so API attacks slot into
// the same verdict machinery as kernel-level ones.
package tenantapi

import (
	"strconv"
)

// Role is the tenant tier's three-role authorisation model.
type Role uint8

// The roles, in directory order.
const (
	// RoleOccupant may read the status of their own room only.
	RoleOccupant Role = iota
	// RoleManager (facility manager) may read every room, write setpoints,
	// and read diagnostics.
	RoleManager
	// RoleVendor (service technician) may read diagnostics only — no room
	// state, no writes.
	RoleVendor
	numRoles
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleOccupant:
		return "occupant"
	case RoleManager:
		return "manager"
	case RoleVendor:
		return "vendor"
	default:
		return "role-" + strconv.Itoa(int(r))
	}
}

// Subject returns the role's subject name in the certified tenant access
// graph ("tenant:occupant" etc).
func (r Role) Subject() string {
	switch r {
	case RoleOccupant:
		return SubjectOccupant
	case RoleManager:
		return SubjectManager
	case RoleVendor:
		return SubjectVendor
	default:
		return "tenant:" + r.String()
	}
}

// Graph subject names (see AccessGraph).
const (
	// SubjectOccupant governs every occupant session's edges.
	SubjectOccupant = "tenant:occupant"
	// SubjectManager governs facility-manager sessions.
	SubjectManager = "tenant:manager"
	// SubjectVendor governs vendor-technician sessions.
	SubjectVendor = "tenant:vendor"
	// SubjectGateway is the API gateway itself — the only subject with an
	// edge to the head-end.
	SubjectGateway = "tenantApiGw"
	// SubjectHeadEnd is the supervisory backend the gateway fronts.
	SubjectHeadEnd = "headEnd"
)

// Route is one of the tier's fixed API routes.
type Route uint8

// The routes.
const (
	// RouteStatus is GET /api/rooms/<n>/status — room temperature,
	// setpoint, and actuator state.
	RouteStatus Route = iota
	// RouteSetpoint is POST /api/rooms/<n>/setpoint — schedule a setpoint
	// write (manager only).
	RouteSetpoint
	// RouteDiagnostics is GET /api/diagnostics — tier-level counters for
	// vendor technicians and managers.
	RouteDiagnostics
	// RouteWhoAmI is GET /api/whoami — echo the authenticated principal.
	RouteWhoAmI
	// NumRoutes bounds per-route arrays.
	NumRoutes
)

// routeLabels are the access-graph edge labels, indexed by Route. They are
// the vocabulary shared by the gateway, the certified graph, and the
// security-event stream.
var routeLabels = [NumRoutes]string{
	RouteStatus:      "room-status",
	RouteSetpoint:    "setpoint-write",
	RouteDiagnostics: "diagnostics",
	RouteWhoAmI:      "whoami",
}

// Label returns the route's certified edge label.
func (r Route) Label() string {
	if int(r) < len(routeLabels) {
		return routeLabels[r]
	}
	return "route-" + strconv.Itoa(int(r))
}

// Outcome is the typed result of one API request.
type Outcome uint8

// The outcomes, mapped onto HTTP status codes by Status.
const (
	// OutcomeOK is a served request (200).
	OutcomeOK Outcome = iota
	// OutcomeBadRequest is a syntactically valid request with an
	// unacceptable value, e.g. a setpoint outside the controller's
	// [15,30] °C band (400). Validation, not mediation: no security event.
	OutcomeBadRequest
	// OutcomeUnauthorized is a session-layer refusal: unknown or revoked
	// token (401, mechanism session-auth).
	OutcomeUnauthorized
	// OutcomeForbidden is an authorisation refusal: the role holds no
	// certified edge for the route, an occupant read outside their room, or
	// a demoted origin (403, mechanism rbac or policy-monitor).
	OutcomeForbidden
	// OutcomeNotFound is a reference to a room the building doesn't have
	// (404).
	OutcomeNotFound
	// OutcomeRateLimited is a per-principal token-bucket refusal (429,
	// mechanism rate-limit).
	OutcomeRateLimited
	// OutcomeOverload is an admission-control shed before any per-principal
	// work (503, mechanism backpressure).
	OutcomeOverload
	// NumOutcomes bounds per-outcome arrays.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	OutcomeOK:           "ok",
	OutcomeBadRequest:   "bad-request",
	OutcomeUnauthorized: "unauthorized",
	OutcomeForbidden:    "forbidden",
	OutcomeNotFound:     "not-found",
	OutcomeRateLimited:  "rate-limited",
	OutcomeOverload:     "overload",
}

var outcomeStatus = [NumOutcomes]int{
	OutcomeOK:           200,
	OutcomeBadRequest:   400,
	OutcomeUnauthorized: 401,
	OutcomeForbidden:    403,
	OutcomeNotFound:     404,
	OutcomeRateLimited:  429,
	OutcomeOverload:     503,
}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome-" + strconv.Itoa(int(o))
}

// Status maps the outcome to its HTTP status code.
func (o Outcome) Status() int {
	if int(o) < len(outcomeStatus) {
		return outcomeStatus[o]
	}
	return 500
}

// Principal is one directory entry: a named identity with a role, a home
// room (occupants only), and a deterministically derived bearer token.
type Principal struct {
	// Name is the stable identity ("occupant-0017", "manager-2", ...).
	Name string
	// Role is the principal's authorisation role.
	Role Role
	// Room is the occupant's own room index; -1 for managers and vendors.
	Room int
	// Token is the bearer token, derived from (directory seed, name) — no
	// wall-clock, no randomness, so every run mints the same credentials.
	Token string
}

// splitmix64 is the repo's standard deterministic bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

const hexdigits = "0123456789abcdef"

// deriveToken mints the deterministic bearer token for (seed, name).
func deriveToken(seed uint64, name string) string {
	h := splitmix64(seed ^ fnv64(name))
	var buf [20]byte
	copy(buf[:], "tok-")
	for i := 0; i < 16; i++ {
		buf[4+i] = hexdigits[(h>>(60-4*i))&0xf]
	}
	return string(buf[:])
}

// DirectoryConfig sizes a tenant directory.
type DirectoryConfig struct {
	// Seed drives token derivation. Two directories with the same config
	// mint identical credentials.
	Seed uint64
	// Rooms is the building's room count; occupants are assigned home rooms
	// round-robin.
	Rooms int
	// Occupants, Managers, Vendors are the per-role principal counts.
	Occupants int
	Managers  int
	Vendors   int
}

func (c DirectoryConfig) withDefaults() DirectoryConfig {
	if c.Rooms <= 0 {
		c.Rooms = 16
	}
	if c.Occupants <= 0 {
		c.Occupants = 4 * c.Rooms
	}
	if c.Managers <= 0 {
		c.Managers = 2
	}
	if c.Vendors <= 0 {
		c.Vendors = 2
	}
	return c
}

// Directory is the deterministic principal database: occupants first, then
// managers, then vendors, with an O(1) token index. Revocation is the
// session-layer response to a credential-theft verdict.
type Directory struct {
	principals []Principal
	byToken    map[string]int32
	revoked    []bool
}

// NewDirectory mints the principal set for cfg.
func NewDirectory(cfg DirectoryConfig) *Directory {
	cfg = cfg.withDefaults()
	n := cfg.Occupants + cfg.Managers + cfg.Vendors
	d := &Directory{
		principals: make([]Principal, 0, n),
		byToken:    make(map[string]int32, n),
		revoked:    make([]bool, n),
	}
	add := func(name string, role Role, room int) {
		p := Principal{Name: name, Role: role, Room: room, Token: deriveToken(cfg.Seed, name)}
		d.byToken[p.Token] = int32(len(d.principals))
		d.principals = append(d.principals, p)
	}
	for i := 0; i < cfg.Occupants; i++ {
		add("occupant-"+pad4(i), RoleOccupant, i%cfg.Rooms)
	}
	for i := 0; i < cfg.Managers; i++ {
		add("manager-"+pad4(i), RoleManager, -1)
	}
	for i := 0; i < cfg.Vendors; i++ {
		add("vendor-"+pad4(i), RoleVendor, -1)
	}
	return d
}

// pad4 renders i as a fixed-width 4-digit decimal, keeping names sortable.
func pad4(i int) string {
	var buf [4]byte
	for j := 3; j >= 0; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[:])
}

// Len is the principal count.
func (d *Directory) Len() int { return len(d.principals) }

// At returns the principal at directory index i.
func (d *Directory) At(i int) *Principal { return &d.principals[i] }

// Find locates a principal by name; nil if absent. Linear — management
// plane only, never on the request path.
func (d *Directory) Find(name string) *Principal {
	for i := range d.principals {
		if d.principals[i].Name == name {
			return &d.principals[i]
		}
	}
	return nil
}

// Lookup resolves a bearer token to a directory index. ok is false for
// unknown or revoked tokens — the caller cannot distinguish the two, which
// is the point: a revoked credential looks exactly like a bad guess.
func (d *Directory) Lookup(token string) (int32, bool) {
	idx, ok := d.byToken[token]
	if !ok || d.revoked[idx] {
		return -1, false
	}
	return idx, true
}

// Revoke invalidates a principal's token by name, returning true if the
// principal existed and was live. This is the session layer's demotion:
// after a stolen-credential verdict, replay dies with 401 at the gateway.
func (d *Directory) Revoke(name string) bool {
	p := d.Find(name)
	if p == nil {
		return false
	}
	idx := d.byToken[p.Token]
	if d.revoked[idx] {
		return false
	}
	d.revoked[idx] = true
	return true
}
