package bas

import (
	"testing"
	"time"

	"mkbas/internal/faultinject"
)

// These tests bind the fault-injection campaign layer to real deployments
// (experiment E10): the same plan runs on every platform, and the outcomes
// differ only by the recovery machinery underneath.

// armOrFatal looks up a builtin plan and arms it on the deployment.
func armOrFatal(t *testing.T, dep Deployment, plan string) *faultinject.Injector {
	t.Helper()
	p, err := faultinject.Lookup(plan)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", plan, err)
	}
	inj, err := dep.ArmFaults(p)
	if err != nil {
		t.Fatalf("ArmFaults(%s): %v", plan, err)
	}
	return inj
}

// TestFailsafeEntersAndExitsOnAllPlatforms pins the hardened controller's
// staleness watchdog end to end: a hung sensor driver (alive but black-holed
// IPC) starves the controller, which must enter failsafe — heater off, alarm
// on — within a bounded delay, and exit on the first fresh sample after the
// hang clears.
func TestFailsafeEntersAndExitsOnAllPlatforms(t *testing.T) {
	for _, p := range []Platform{PlatformMinix, PlatformSel4, PlatformLinux} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			dep, err := Deploy(p, tb, cfg, DeployOptions{})
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			// hang-sensor: IPC to and from tempSensProc black-holed at 40m
			// for 2 minutes.
			inj := armOrFatal(t, dep, "hang-sensor")

			tb.Machine.Run(40 * time.Minute)
			if tb.Room.AlarmOn() {
				t.Fatal("alarm on before the hang")
			}
			// Entry: the staleness window is 10s and the bindings poll at
			// half-window granularity, so failsafe must be engaged well
			// within 30s of the last sample.
			tb.Machine.Run(30 * time.Second)
			if !tb.Room.AlarmOn() {
				t.Fatal("failsafe alarm not raised after sensor went silent")
			}
			if tb.Room.HeaterOn() {
				t.Fatal("heater still commanded on while blind")
			}
			if temp := tb.Room.Temperature(); temp < 20 || temp > 24 {
				t.Fatalf("room at %.2f during failsafe, expected near setpoint", temp)
			}

			// Exit: the hang clears at 42m; the next sample ends failsafe.
			tb.Machine.Run(4 * time.Minute)
			if tb.Room.AlarmOn() {
				t.Fatal("alarm still on after the sensor recovered")
			}
			if temp := tb.Room.Temperature(); temp < 21 || temp > 23 {
				t.Fatalf("loop did not resume control: temp %.2f", temp)
			}

			// The injector saw the self-healing: recovered with MTTR just
			// over the 2-minute hang window, and no process ever restarted.
			rep := inj.Report()
			if rep.Injected != 1 || rep.Recovered != 1 {
				t.Fatalf("report: %+v, want 1 injected 1 recovered", rep)
			}
			if min, max := int64(2*time.Minute), int64(2*time.Minute+30*time.Second); rep.MTTRMaxNs < min || rep.MTTRMaxNs > max {
				t.Errorf("MTTR %s outside [2m, 2m30s]", time.Duration(rep.MTTRMaxNs))
			}
			if n := dep.ControllerRestarts(); n != 0 {
				t.Errorf("restarts = %d on a hang (nothing died)", n)
			}
		})
	}
}

// TestCrashSensorRecoveryContrast is the E10 headline at the deployment
// layer: the same sensor-driver crash is healed by MINIX RS, the seL4
// monitor, and the hardened-Linux supervisor, while the paper's default
// Linux deployment — no supervisor — loses the sensor permanently and the
// controller parks in failsafe.
func TestCrashSensorRecoveryContrast(t *testing.T) {
	cases := []struct {
		platform Platform
		recovery bool
		healed   bool
	}{
		{PlatformMinix, false, true}, // RS is integral: no opt-in needed
		{PlatformSel4, true, true},
		{PlatformLinuxHardened, true, true},
		{PlatformLinux, true, false}, // Recovery is ignored on plain Linux
	}
	for _, c := range cases {
		c := c
		t.Run(string(c.platform), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			dep, err := Deploy(c.platform, tb, cfg, DeployOptions{Recovery: c.recovery})
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			inj := armOrFatal(t, dep, "crash-sensor") // kills tempSensProc at 40m
			tb.Machine.Run(50 * time.Minute)

			rep := inj.Report()
			if !c.healed {
				// The controller itself survives — only its sensor is gone —
				// so liveness alone cannot tell this run from a healthy one.
				if !dep.ControllerAlive() {
					t.Error("controller process died; only the sensor was crashed")
				}
				if dep.ControllerRecovered() || dep.ControllerRestarts() != 0 {
					t.Errorf("vanilla Linux reports recovery: restarts=%d recovered=%v",
						dep.ControllerRestarts(), dep.ControllerRecovered())
				}
				if !tb.Room.AlarmOn() {
					t.Error("failsafe alarm not latched with the sensor gone for good")
				}
				if tb.Room.HeaterOn() {
					t.Error("heater on while permanently blind")
				}
				if rep.Unrecovered != 1 {
					t.Errorf("fault report: %+v, want 1 unrecovered", rep)
				}
				return
			}
			if n := dep.ControllerRestarts(); n < 1 {
				t.Errorf("restarts = %d, want >= 1", n)
			}
			if !dep.ControllerRecovered() {
				t.Error("ControllerRecovered = false after a healed crash")
			}
			if tb.Room.AlarmOn() {
				t.Error("alarm on after recovery")
			}
			if temp := tb.Room.Temperature(); temp < 21 || temp > 23 {
				t.Errorf("loop did not survive the crash: temp %.2f", temp)
			}
			if rep.Recovered != 1 {
				t.Fatalf("fault report: %+v, want 1 recovered", rep)
			}
			// MTTR is bounded by the recovery period (RS backoff 50ms, the
			// monitor and supervisor sweep at 1s) plus one sample.
			if rep.MTTRMaxNs <= 0 || rep.MTTRMaxNs > int64(30*time.Second) {
				t.Errorf("MTTR %s not in (0, 30s]", time.Duration(rep.MTTRMaxNs))
			}
		})
	}
}
