package aadl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one AADL package from source text.
func Parse(src string) (*Package, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pkg, err := p.parsePackage()
	if err != nil {
		return nil, err
	}
	if err := analyze(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(tok token, format string, args ...any) error {
	return &SyntaxError{Line: tok.line, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind.
func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %v, found %q", kind, t.text)
	}
	return t, nil
}

// expectKeyword consumes a specific keyword identifier.
func (p *parser) expectKeyword(kw string) (token, error) {
	t := p.next()
	if !keywordIs(t, kw) {
		return t, p.errf(t, "expected %q, found %q", kw, t.text)
	}
	return t, nil
}

// parsePackage parses "package Name public ... end Name;".
func (p *parser) parsePackage() (*Package, error) {
	if _, err := p.expectKeyword("package"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("public"); err != nil {
		return nil, err
	}
	pkg := &Package{Name: nameTok.text}
	for {
		t := p.peek()
		switch {
		case keywordIs(t, "process"):
			proc, perr := p.parseProcess()
			if perr != nil {
				return nil, perr
			}
			pkg.Processes = append(pkg.Processes, *proc)
		case keywordIs(t, "system"):
			sys, serr := p.parseSystem()
			if serr != nil {
				return nil, serr
			}
			pkg.Systems = append(pkg.Systems, *sys)
		case keywordIs(t, "end"):
			p.next()
			endName, eerr := p.expect(tokIdent)
			if eerr != nil {
				return nil, eerr
			}
			if !strings.EqualFold(endName.text, pkg.Name) {
				return nil, p.errf(endName, "end %q does not match package %q", endName.text, pkg.Name)
			}
			if _, eerr := p.expect(tokSemi); eerr != nil {
				return nil, eerr
			}
			if _, eerr := p.expect(tokEOF); eerr != nil {
				return nil, eerr
			}
			return pkg, nil
		default:
			return nil, p.errf(t, "expected process, system, or end; found %q", t.text)
		}
	}
}

// parseProcess parses "process Name [features ...] [properties ...] end Name;".
func (p *parser) parseProcess() (*Process, error) {
	start, err := p.expectKeyword("process")
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	proc := &Process{Name: nameTok.text, Properties: map[string]PropValue{}, Line: start.line}
	if keywordIs(p.peek(), "features") {
		p.next()
		for p.peek().kind == tokIdent && !keywordIs(p.peek(), "properties") && !keywordIs(p.peek(), "end") {
			port, perr := p.parsePort()
			if perr != nil {
				return nil, perr
			}
			proc.Ports = append(proc.Ports, *port)
		}
	}
	if keywordIs(p.peek(), "properties") {
		p.next()
		for p.peek().kind == tokIdent && !keywordIs(p.peek(), "end") {
			key, val, perr := p.parseProperty()
			if perr != nil {
				return nil, perr
			}
			proc.Properties[key] = val
		}
	}
	if err := p.parseEnd(proc.Name); err != nil {
		return nil, err
	}
	return proc, nil
}

// parsePort parses "name: in|out event data port;".
func (p *parser) parsePort() (*Port, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	dirTok := p.next()
	var dir PortDirection
	switch {
	case keywordIs(dirTok, "in"):
		dir = DirIn
	case keywordIs(dirTok, "out"):
		dir = DirOut
	default:
		return nil, p.errf(dirTok, "expected in or out, found %q", dirTok.text)
	}
	// "event data port" | "event port" | "data port"
	sawCategory := false
	for {
		t := p.peek()
		if keywordIs(t, "event") || keywordIs(t, "data") {
			p.next()
			continue
		}
		if keywordIs(t, "port") {
			p.next()
			sawCategory = true
		}
		break
	}
	if !sawCategory {
		return nil, p.errf(p.peek(), "expected port category")
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Port{Name: nameTok.text, Direction: dir, Line: nameTok.line}, nil
}

// parseProperty parses "Key => value;" where value is a number or
// "(n, n, ...)". Keys are normalised to lower case.
func (p *parser) parseProperty() (string, PropValue, error) {
	keyTok, err := p.expect(tokIdent)
	if err != nil {
		return "", PropValue{}, err
	}
	key := strings.ToLower(keyTok.text)
	// Allow namespaced property names like BAS_Properties::AC_ID.
	if p.peek().kind == tokDblColon {
		p.next()
		sub, serr := p.expect(tokIdent)
		if serr != nil {
			return "", PropValue{}, serr
		}
		key = strings.ToLower(sub.text)
	}
	if _, err := p.expect(tokAssoc); err != nil {
		return "", PropValue{}, err
	}
	val, err := p.parsePropValue()
	if err != nil {
		return "", PropValue{}, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return "", PropValue{}, err
	}
	return key, val, nil
}

func (p *parser) parsePropValue() (PropValue, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return PropValue{}, p.errf(t, "bad number %q", t.text)
		}
		return PropValue{Number: n}, nil
	case tokLParen:
		var list []int64
		for {
			numTok, err := p.expect(tokNumber)
			if err != nil {
				return PropValue{}, err
			}
			n, err := strconv.ParseInt(numTok.text, 10, 64)
			if err != nil {
				return PropValue{}, p.errf(numTok, "bad number %q", numTok.text)
			}
			list = append(list, n)
			sep := p.next()
			if sep.kind == tokComma {
				continue
			}
			if sep.kind == tokRParen {
				return PropValue{List: list, IsList: true}, nil
			}
			return PropValue{}, p.errf(sep, "expected ',' or ')', found %q", sep.text)
		}
	default:
		return PropValue{}, p.errf(t, "expected number or list, found %q", t.text)
	}
}

// parseSystem parses
// "system implementation Name.Impl [subcomponents ...] [connections ...] end Name.Impl;".
func (p *parser) parseSystem() (*SystemImpl, error) {
	start, err := p.expectKeyword("system")
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("implementation"); err != nil {
		return nil, err
	}
	name, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	sys := &SystemImpl{Name: name, Line: start.line}
	if keywordIs(p.peek(), "subcomponents") {
		p.next()
		for p.peek().kind == tokIdent && !keywordIs(p.peek(), "connections") && !keywordIs(p.peek(), "end") {
			sub, serr := p.parseSubcomponent()
			if serr != nil {
				return nil, serr
			}
			sys.Subcomponents = append(sys.Subcomponents, *sub)
		}
	}
	if keywordIs(p.peek(), "connections") {
		p.next()
		for p.peek().kind == tokIdent && !keywordIs(p.peek(), "end") {
			conn, cerr := p.parseConnection()
			if cerr != nil {
				return nil, cerr
			}
			sys.Connections = append(sys.Connections, *conn)
		}
	}
	if err := p.parseEnd(sys.Name); err != nil {
		return nil, err
	}
	return sys, nil
}

// parseDottedName parses "name" or "name.impl".
func (p *parser) parseDottedName() (string, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	name := first.text
	if p.peek().kind == tokDot {
		p.next()
		second, serr := p.expect(tokIdent)
		if serr != nil {
			return "", serr
		}
		name += "." + second.text
	}
	return name, nil
}

// parseSubcomponent parses "instance: process TypeName;".
func (p *parser) parseSubcomponent() (*Subcomponent, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("process"); err != nil {
		return nil, err
	}
	typeTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Subcomponent{Name: nameTok.text, ProcessType: typeTok.text, Line: nameTok.line}, nil
}

// parseConnection parses
// "label: port a.x -> b.y [{ Props }];".
func (p *parser) parseConnection() (*Connection, error) {
	labelTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("port"); err != nil {
		return nil, err
	}
	src, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	dst, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	conn := &Connection{
		Label:      labelTok.text,
		Src:        src,
		Dst:        dst,
		Properties: map[string]PropValue{},
		Line:       labelTok.line,
	}
	if p.peek().kind == tokLBrace {
		p.next()
		for p.peek().kind == tokIdent {
			key, val, perr := p.parseProperty()
			if perr != nil {
				return nil, perr
			}
			conn.Properties[key] = val
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return conn, nil
}

// parsePortRef parses "component.port".
func (p *parser) parsePortRef() (PortRef, error) {
	comp, err := p.expect(tokIdent)
	if err != nil {
		return PortRef{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return PortRef{}, err
	}
	port, err := p.expect(tokIdent)
	if err != nil {
		return PortRef{}, err
	}
	return PortRef{Component: comp.text, Port: port.text}, nil
}

// parseEnd parses "end Name;" verifying the name matches.
func (p *parser) parseEnd(want string) error {
	if _, err := p.expectKeyword("end"); err != nil {
		return err
	}
	name, err := p.parseDottedName()
	if err != nil {
		return err
	}
	if !strings.EqualFold(name, want) {
		return &SyntaxError{Line: p.peek().line, Msg: fmt.Sprintf("end %q does not match %q", name, want)}
	}
	_, err = p.expect(tokSemi)
	return err
}
