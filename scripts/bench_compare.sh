#!/usr/bin/env sh
# Re-record the four scaling benches with check.sh's exact commands and
# print each record's best-of-workers throughput (board_steps_per_sec, or
# requests_per_sec for the tenant-API record) against the checked-in
# baselines (scripts/bench_baselines/). This script reports;
# check.sh enforces — the tolerance here is the widest benchguard accepts,
# so every ratio prints without jitter failing the run.
#
# Usage:
#
#	scripts/bench_compare.sh           # print fresh-vs-baseline deltas
#	scripts/bench_compare.sh -record   # also adopt the fresh records as
#	                                   # the new baselines
set -eu
cd "$(dirname "$0")/.."
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
go run ./cmd/baslab -sweep 'platforms=all;actions=all;models=both' -bench 1,2,4,8 -bench-out "$dir/BENCH_lab.json"
go run ./cmd/baslab -sweep 'platforms=paper;actions=none' -faults crash-sensor -bench 1,2,4,8 -bench-out "$dir/BENCH_faults.json"
go run ./cmd/basbuilding -rooms 64 -settle 10m -window 20m -bench 1,2,4,8 -bench-out "$dir/BENCH_building.json"
go run ./cmd/basload -bench 1,2,4,8 -bench-out "$dir/BENCH_api.json"
go run ./cmd/benchguard -fresh "$dir" -tolerance 0.98
if [ "${1:-}" = "-record" ]; then
	cp "$dir"/BENCH_lab.json "$dir"/BENCH_faults.json "$dir"/BENCH_building.json "$dir"/BENCH_api.json scripts/bench_baselines/
	echo "baselines re-recorded in scripts/bench_baselines/"
fi
