package machine

import (
	"reflect"
	"testing"
)

func TestIPCLogAggregation(t *testing.T) {
	l := NewIPCLog()
	if l.Len() != 0 || l.Used("a", "b", "mt1") {
		t.Fatal("fresh log must be empty")
	}
	l.Record("a", "b", "mt1")
	l.Record("a", "b", "mt1")
	l.Record("a", "b", "mt2")
	l.Record("z", "a", "send")

	if got := l.Count("a", "b", "mt1"); got != 2 {
		t.Errorf("Count(a,b,mt1) = %d, want 2", got)
	}
	if !l.Used("a", "b", "mt2") || l.Used("b", "a", "mt1") {
		t.Error("Used should reflect exactly the recorded direction")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3 distinct rows", l.Len())
	}

	want := []IPCUsageCount{
		{IPCUsage{"a", "b", "mt1"}, 2},
		{IPCUsage{"a", "b", "mt2"}, 1},
		{IPCUsage{"z", "a", "send"}, 1},
	}
	if got := l.Usages(); !reflect.DeepEqual(got, want) {
		t.Errorf("Usages = %+v, want %+v", got, want)
	}
}

func TestIPCLogMergeAndReset(t *testing.T) {
	a := NewIPCLog()
	a.Record("a", "b", "mt1")
	a.Record("a", "b", "mt1")
	b := NewIPCLog()
	b.Record("a", "b", "mt1")
	b.Record("c", "d", "send")

	a.Merge(b)
	if got := a.Count("a", "b", "mt1"); got != 3 {
		t.Errorf("merged Count(a,b,mt1) = %d, want 3", got)
	}
	if !a.Used("c", "d", "send") {
		t.Error("merge must import rows the target had not seen")
	}
	if b.Count("a", "b", "mt1") != 1 {
		t.Error("merge must not mutate the source")
	}
	a.Merge(nil) // nil source is a no-op
	if a.Len() != 2 {
		t.Errorf("Len after nil merge = %d, want 2", a.Len())
	}

	clone := a.Clone()
	a.Reset()
	if a.Len() != 0 || a.Used("a", "b", "mt1") {
		t.Error("Reset must clear the log")
	}
	if clone.Count("a", "b", "mt1") != 3 || clone.Len() != 2 {
		t.Errorf("clone must survive the source's Reset: %+v", clone.Usages())
	}
	// A reset log is immediately usable for the next run slice.
	a.Record("x", "y", "recv")
	if a.Count("x", "y", "recv") != 1 {
		t.Error("reset log must accept new recordings")
	}
}

func TestMachineHasIPCLog(t *testing.T) {
	m := New(Config{})
	defer m.Shutdown()
	m.IPC().Record("x", "y", "send")
	if !m.IPC().Used("x", "y", "send") {
		t.Fatal("machine's IPC log should retain recordings")
	}
}

func TestMergeUsages(t *testing.T) {
	a := []IPCUsageCount{
		{IPCUsage: IPCUsage{Src: "web", Dst: "ctrl", Label: "send"}, Count: 2},
		{IPCUsage: IPCUsage{Src: "ctrl", Dst: "heater", Label: "send"}, Count: 1},
	}
	b := []IPCUsageCount{
		{IPCUsage: IPCUsage{Src: "web", Dst: "ctrl", Label: "send"}, Count: 5},
	}
	got := MergeUsages(a, b, nil)
	if len(got) != 2 {
		t.Fatalf("MergeUsages returned %d rows, want 2", len(got))
	}
	if got[0].Src != "ctrl" || got[0].Count != 1 {
		t.Errorf("row 0 = %+v", got[0])
	}
	if got[1].Src != "web" || got[1].Count != 7 {
		t.Errorf("row 1 = %+v", got[1])
	}
	if out := MergeUsages(); len(out) != 0 {
		t.Errorf("empty merge returned %+v", out)
	}
}
