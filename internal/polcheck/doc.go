// Package polcheck is the cross-platform IPC policy static analyzer: it
// proves security properties of a policy before anything boots, the
// complement of the dynamic attack experiments in internal/attack.
//
// The paper validates its seL4 configuration by brute-force capability
// enumeration and "expects the CapDL file to be correct; for high-assurance
// systems this file can also be machine verified". polcheck is that machine
// verification, generalised to all three policy formalisms the repo models:
//
//   - the MINIX access control matrix (core.Matrix / core.Policy),
//   - the seL4 capability distribution (capdl.Spec), and
//   - the Linux discretionary access control model over POSIX queues
//     (DACModel, mirroring internal/linuxsim's permission predicate).
//
// Each source normalises into the same directed access graph: subject nodes
// (processes/components), channel nodes (endpoints/queues), and device
// nodes, with flow edges labelled by the rights that justify them and kill
// edges for destroy authority. On the graph the analyzer offers:
//
//   - transitive reachability / information-flow closure (Graph.Reach), in
//     two modes: ReachDirect follows only conduits (channels, devices) and
//     answers "can A deliver data to B without any other subject's code
//     cooperating" — the spoofing question; ReachTransitive also flows
//     through subjects and answers "can data originating at A ever influence
//     B" — the information-flow question;
//   - a declarative property language (ParseProperties / CheckProperties)
//     with DenyPath, AllowPath, NoKillAuthority and OnlyEndpoint encoding
//     the paper's Section IV-D attack goals as static assertions;
//   - structural lint (StructuralFindings) for over-broad or inert grants;
//   - a least-privilege audit (AuditMatrix) diffing static grants against
//     the dynamic IPC usage aggregated by machine.IPCLog, flagging
//     granted-but-never-used rights.
//
// Findings render both human-readable (Report.Text) and machine-readable
// (Report JSON marshalling). Integration points: internal/aadl lints
// generated matrices post-compile, internal/bas gates deployments on the
// scenario property set, and cmd/polcheck analyzes the shipped tempcontrol
// scenario end-to-end.
package polcheck
