package building

import (
	"bytes"
	"testing"
	"time"

	"mkbas/internal/bas"
)

func paperMix() []bas.Platform {
	return []bas.Platform{bas.PlatformLinux, bas.PlatformMinix, bas.PlatformSel4}
}

// evenSecure marks even-numbered rooms secure.
func evenSecure(rooms int) []bool {
	out := make([]bool, rooms)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

func TestBuildingPollsSchedulesAndStaysInBand(t *testing.T) {
	b, err := New(Config{
		Rooms:  4,
		Mix:    paperMix(),
		Secure: evenSecure(4),
		HeadEnd: HeadEndConfig{
			Schedule: []SetpointEvent{{At: 20 * time.Minute, Value: 21}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(40 * time.Minute)

	rep := b.Report()
	if rep.Alarm {
		t.Fatalf("healthy building raised the alarm: flagged %v", rep.Flagged)
	}
	if rep.Setpoint != 21 {
		t.Fatalf("scheduled setpoint = %v, want 21", rep.Setpoint)
	}
	if rep.WritesSent != 4 {
		t.Fatalf("writes sent = %d, want 4 (one per room)", rep.WritesSent)
	}
	if rep.PollsAnswered == 0 || rep.PollsMissed != 0 {
		t.Fatalf("polls answered/missed = %d/%d", rep.PollsAnswered, rep.PollsMissed)
	}
	for _, rr := range rep.RoomReports {
		if !rr.BMS.HaveTemp {
			t.Fatalf("room %d: BMS never saw a temperature", rr.Room)
		}
		if rr.BMS.Writes != 1 {
			t.Fatalf("room %d: %d acked writes, want 1", rr.Room, rr.BMS.Writes)
		}
		// Demand-response reached the physical room on every platform.
		if rr.RoomTemp < 20 || rr.RoomTemp > 22 {
			t.Fatalf("room %d (%s): temp %.2f, want ~21 after schedule", rr.Room, rr.Platform, rr.RoomTemp)
		}
		if !rr.ControllerAlive {
			t.Fatalf("room %d: controller dead", rr.Room)
		}
		if rr.FramesRejected != 0 {
			t.Fatalf("room %d: %d frames rejected with no attacker", rr.Room, rr.FramesRejected)
		}
	}
}

func TestBuildingByteDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		b, err := New(Config{
			Rooms:   16,
			Mix:     paperMix(),
			Secure:  evenSecure(16),
			Workers: workers,
			HeadEnd: HeadEndConfig{
				Schedule: []SetpointEvent{{At: 10 * time.Minute, Value: 23}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.Run(20 * time.Minute)
		out, err := b.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("16-room building diverged between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(serial), len(parallel))
	}
}

func TestBuildingSensorCrashFlagsExactlyThatRoom(t *testing.T) {
	// The E11 fault scenario: one room's sensor driver crashes on a platform
	// with no recovery; the controller's failsafe engages (heater off, local
	// alarm on) while its reported temperature freezes at the last good
	// sample — so the supervisor can only learn the truth from the room's
	// alarm point, and must flag that room and only that room.
	b, err := New(Config{
		Rooms:  4,
		Mix:    []bas.Platform{bas.PlatformLinux},
		Faults: map[int]string{2: "crash-sensor"}, // fires at 40m
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(55 * time.Minute)

	rep := b.Report()
	if !rep.Alarm {
		t.Fatal("building alarm not raised")
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != 2 {
		t.Fatalf("flagged rooms = %v, want [2]", rep.Flagged)
	}
	faulted := rep.RoomReports[2]
	if faulted.Faults == nil || faulted.Faults.Injected != 1 {
		t.Fatalf("fault report = %+v", faulted.Faults)
	}
	if !faulted.BMS.AlarmOn {
		t.Fatalf("room 2 BMS state = %+v, want relayed alarm", faulted.BMS)
	}
	// The frozen sensor keeps reporting an in-band temperature: the alarm
	// relay, not the temperature band, is what catches this failure.
	if faulted.BMS.OutOfBand {
		t.Fatalf("room 2 BMS state = %+v: frozen sensor should read in-band", faulted.BMS)
	}
}

func TestBuildingPartitionFailoverAndStandbyTakeover(t *testing.T) {
	// The E15 scenario end to end: room 1 is partitioned off the bus at 40m
	// for 10m (it rides the outage on its last-committed setpoint), then the
	// primary head-end dies at 65m and the standby takes over. Every number
	// below is a pure function of virtual time, so exact assertions hold.
	b, err := New(Config{
		Rooms: 4, Mix: paperMix(), Secure: evenSecure(4),
		BusFaults: "partition-failover", Standby: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(120 * time.Minute)

	rep := b.Report()
	if rep.BusFaults == nil || rep.BusFaults.Injected != 2 || rep.BusFaults.Recovered != 2 {
		t.Fatalf("bus campaign = %+v, want 2 injected, 2 recovered", rep.BusFaults)
	}
	partition, crash := rep.BusFaults.Faults[0], rep.BusFaults.Faults[1]
	if partition.Kind != "bus-partition" || time.Duration(partition.MTTRNs) != 11*time.Minute+2*time.Second {
		t.Fatalf("partition outcome = %+v, want MTTR 11m2s", partition)
	}
	if crash.Kind != "headend-crash" || time.Duration(crash.MTTRNs) != 64*time.Second {
		t.Fatalf("head-end crash outcome = %+v, want MTTR 1m4s", crash)
	}

	// The standby's silence detector fires a fixed number of rounds after
	// the crash: takeover lands on round 3964 at any worker count.
	if rep.FailoverRound != 3964 || b.FailoverRound() != 3964 {
		t.Fatalf("failover round = %d/%d, want 3964", rep.FailoverRound, b.FailoverRound())
	}
	if !rep.Standby || b.Standby == nil || !b.Standby.Active() {
		t.Fatal("supervisory role did not move to the standby")
	}
	if b.Standby.TakeoverRound() != 3964 {
		t.Fatalf("standby takeover round = %d, want 3964", b.Standby.TakeoverRound())
	}

	// Degraded-mode autonomy: the partitioned room lost gateway supervision
	// during the partition AND the interregnum, and restored both times; the
	// rooms are all healthy again by the end of the run.
	room1 := rep.RoomReports[1]
	if room1.SupervisionLost != 2 || room1.SupervisionRestored != 2 || room1.Degraded {
		t.Fatalf("room 1 supervision = lost %d restored %d degraded %v, want 2/2/false",
			room1.SupervisionLost, room1.SupervisionRestored, room1.Degraded)
	}
	for _, rr := range rep.RoomReports {
		if rr.Failovers != 1 {
			t.Fatalf("room %d failovers = %d, want 1", rr.Room, rr.Failovers)
		}
		if !rr.ControllerAlive {
			t.Fatalf("room %d controller dead", rr.Room)
		}
	}
	if rep.Alarm || len(rep.Flagged) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("post-recovery health: alarm=%v flagged=%v quarantined=%v",
			rep.Alarm, rep.Flagged, rep.Quarantined)
	}
	// The partitioned room's own fault view closes at its first reconfirmed
	// poll, not at the building-wide instant.
	if room1.BusFaults == nil || room1.BusFaults.Recovered != 2 {
		t.Fatalf("room 1 bus-fault view = %+v", room1.BusFaults)
	}
}

func TestBuildingBusDropMarksRoomUnreachable(t *testing.T) {
	// bus-drop refuses room 1's dials outright: the head-end must report the
	// room UNREACHABLE (a cut cable), not merely STALE (silence).
	b, err := New(Config{
		Rooms: 4, Mix: paperMix(), Secure: evenSecure(4),
		BusFaults: "bus-drop",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(60 * time.Minute)

	rep := b.Report()
	room1 := rep.RoomReports[1]
	if room1.BMS.UnreachableRounds == 0 {
		t.Fatal("bus-drop never drove room 1 unreachable")
	}
	for _, rr := range rep.RoomReports {
		if rr.Room != 1 && rr.BMS.UnreachableRounds != 0 {
			t.Fatalf("room %d unreachable under a room-1 fault", rr.Room)
		}
	}
	// The 5-minute drop window ends at 45m; by 60m the room has reconfirmed.
	if room1.BusFaults == nil || room1.BusFaults.Recovered != 1 {
		t.Fatalf("room 1 fault view = %+v, want recovered", room1.BusFaults)
	}
	if rep.Alarm {
		t.Fatalf("alarm still raised after the drop window healed: %v", rep.Flagged)
	}
}

func TestBuildingFaultedByteDeterministicAcrossWorkers(t *testing.T) {
	// The resilience machinery must not cost the 1-vs-N-worker contract:
	// partition verdicts, supervision trips, and the standby takeover all
	// land on the same rounds regardless of scheduling.
	run := func(workers int) []byte {
		b, err := New(Config{
			Rooms: 8, Mix: paperMix(), Secure: evenSecure(8),
			Workers: workers, BusFaults: "partition-failover", Standby: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.Run(80 * time.Minute)
		out, err := b.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("faulted 8-room building diverged between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(serial), len(parallel))
	}
}
