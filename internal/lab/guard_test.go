package lab

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchRecord(identical bool, steps ...float64) *BenchReport {
	rep := &BenchReport{Identical: identical}
	for i, s := range steps {
		rep.Points = append(rep.Points, BenchPoint{Workers: i + 1, BoardStepsPerSec: s})
	}
	return rep
}

func TestCompareBenchParity(t *testing.T) {
	base := benchRecord(true, 100, 180, 200)
	fresh := benchRecord(true, 95, 190, 170)
	res := CompareBench("lab", base, fresh, 0.5)
	if !res.OK {
		t.Fatalf("parity run failed the guard: %+v", res)
	}
	if res.BaselineBest != 200 || res.FreshBest != 190 {
		t.Fatalf("best-of extraction wrong: %+v", res)
	}
}

func TestCompareBenchRequestAxis(t *testing.T) {
	// Request-oriented records (BENCH_api.json) carry no board-steps axis;
	// the guard must fall back to requests_per_sec and label the unit.
	reqRecord := func(identical bool, rates ...float64) *BenchReport {
		rep := &BenchReport{Identical: identical}
		for i, r := range rates {
			rep.Points = append(rep.Points, BenchPoint{Workers: i + 1, RequestsPerSec: r})
		}
		return rep
	}
	res := CompareBench("api", reqRecord(true, 3.0e6, 3.5e6), reqRecord(true, 3.4e6), 0.5)
	if !res.OK || res.Unit != "req/s" || res.BaselineBest != 3.5e6 || res.FreshBest != 3.4e6 {
		t.Fatalf("request-axis comparison wrong: %+v", res)
	}
	if res := CompareBench("api", reqRecord(true, 3.5e6), reqRecord(true, 1.0e6), 0.5); res.OK {
		t.Fatalf("3.5x request-rate regression passed the guard: %+v", res)
	} else if !strings.Contains(res.Reason, "req/s") {
		t.Fatalf("regression reason does not name the req/s unit: %q", res.Reason)
	}
}

func TestCompareBenchRegression(t *testing.T) {
	base := benchRecord(true, 200)
	fresh := benchRecord(true, 80) // ratio 0.4 < 1-0.5
	res := CompareBench("lab", base, fresh, 0.5)
	if res.OK {
		t.Fatalf("2.5x regression passed the guard: %+v", res)
	}
	if !strings.Contains(res.Reason, "regressed") {
		t.Fatalf("reason does not explain the regression: %q", res.Reason)
	}
}

func TestCompareBenchToleranceBoundary(t *testing.T) {
	base := benchRecord(true, 100)
	// Exactly at the 1-tolerance edge passes (strict less-than fails).
	if res := CompareBench("lab", base, benchRecord(true, 50), 0.5); !res.OK {
		t.Fatalf("edge ratio failed: %+v", res)
	}
	if res := CompareBench("lab", base, benchRecord(true, 49), 0.5); res.OK {
		t.Fatalf("below-edge ratio passed: %+v", res)
	}
}

func TestCompareBenchDeterminismViolation(t *testing.T) {
	base := benchRecord(true, 100)
	fresh := benchRecord(false, 500) // faster, but not byte-identical
	res := CompareBench("lab", base, fresh, 0.5)
	if res.OK {
		t.Fatalf("identical=false record passed the guard: %+v", res)
	}
	if !strings.Contains(res.Reason, "determinism") {
		t.Fatalf("reason does not mention determinism: %q", res.Reason)
	}
}

func TestCompareBenchMissingBaseline(t *testing.T) {
	res := CompareBench("lab", nil, benchRecord(true, 100), 0.5)
	if !res.OK || res.Reason == "" {
		t.Fatalf("missing baseline should pass with a note: %+v", res)
	}
	if res := CompareBench("lab", nil, nil, 0.5); res.OK {
		t.Fatalf("missing fresh record passed: %+v", res)
	}
}

func TestLoadBenchRoundTrip(t *testing.T) {
	rep := benchRecord(true, 123.5, 456.25)
	rep.Shards = 50
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_lab.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if best, unit := bestSteps(got); got.Shards != 50 || best != 456.25 || unit != "board-steps/s" {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
	if _, err := LoadBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
