package tenantapi

// Token-bucket rate limiting in pure integer virtual time. Buckets are
// indexed by directory position — a fixed array sized at construction — so
// Allow is two loads, an integer refill, and a compare: nothing allocates
// and nothing depends on wall-clock, map order, or goroutine scheduling.

// scale is the fixed-point unit: one request token = 1e9 sub-tokens, so a
// refill of (elapsedNs × ratePerSec) needs no division on the hot path.
const scale = int64(1e9)

type bucket struct {
	// sub is the current fill in sub-tokens (scale per request).
	sub int64
	// lastNs is the virtual instant of the previous refill.
	lastNs int64
}

// Limiter is a per-principal token bucket.
type Limiter struct {
	// ratePerSec is sustained request rate per principal per virtual second.
	ratePerSec int64
	// burstSub is the bucket capacity in sub-tokens.
	burstSub int64
	buckets  []bucket
}

// NewLimiter sizes a limiter for n principals. ratePerSec is the sustained
// per-principal rate; burst is the bucket depth (requests that may land
// back-to-back before the rate gates). Buckets start full.
func NewLimiter(n int, ratePerSec, burst int64) *Limiter {
	if ratePerSec <= 0 {
		ratePerSec = 10
	}
	if burst <= 0 {
		burst = 2 * ratePerSec
	}
	l := &Limiter{
		ratePerSec: ratePerSec,
		burstSub:   burst * scale,
		buckets:    make([]bucket, n),
	}
	for i := range l.buckets {
		l.buckets[i].sub = l.burstSub
	}
	return l
}

// Allow charges one request to principal idx at virtual instant nowNs,
// reporting whether the bucket had a token. Virtual time is monotone per
// shard, so a negative elapsed never occurs; a zero elapsed simply refills
// nothing.
func (l *Limiter) Allow(idx int32, nowNs int64) bool {
	b := &l.buckets[idx]
	elapsed := nowNs - b.lastNs
	b.lastNs = nowNs
	b.sub += elapsed * l.ratePerSec
	if b.sub > l.burstSub {
		b.sub = l.burstSub
	}
	if b.sub < scale {
		return false
	}
	b.sub -= scale
	return true
}
