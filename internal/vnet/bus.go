package vnet

import (
	"fmt"

	"mkbas/internal/perf"
)

// The inter-board BAS bus. A Bus joins the per-board Stacks of a multi-room
// building into one shared field network, the way a BACnet/IP segment joins
// every controller in a real building: any node can dial any other node's
// ports, and — deliberately, like the legacy bus the paper criticises — any
// node can observe every frame in flight (SetTap).
//
// Determinism rule: boards run in parallel between delivery barriers, so the
// bus splits every exchange into two phases. During a round, each node's own
// goroutine queues writes and dials on its BusConns (touching only that
// node's state — nodes never share mutable state mid-round). At the barrier,
// the single coordinator goroutine calls Flush, which performs all queued
// dials and deliveries in fixed order: nodes by ascending id, each node's
// connections in creation order, each connection's chunks in write order.
// Delivery order is therefore a pure function of the simulation state, never
// of goroutine scheduling — the property the building's byte-identical
// 1-vs-N-worker contract rests on.
//
// Chunks preserve write boundaries end to end; senders length-prefix frames
// (bacnet.Frame) so receivers can re-segment the byte stream regardless of
// how reads coalesce.

// NodeID addresses one node on the bus.
type NodeID int

// busNode is one attachment point: a board's stack, or a stackless
// originate-only node (the supervisory head-end dials out but listens on
// nothing).
//
// chunkFree is the node's frame-buffer free list: BusConn.Write copies the
// caller's bytes into a recycled chunk, and Flush returns delivered chunks
// here. It is per-node (not per-bus) because writes happen on the owning
// node's goroutine mid-round, when nodes must not share mutable state; the
// coordinator recycles at the barrier, when every board is parked.
type busNode struct {
	name      string
	stack     *Stack
	conns     []*BusConn
	chunkFree [][]byte
}

// getChunk pops a recycled chunk (length 0, capacity whatever it grew to),
// or returns nil so append allocates a fresh one.
func (n *busNode) getChunk() []byte {
	if k := len(n.chunkFree); k > 0 {
		c := n.chunkFree[k-1]
		n.chunkFree[k-1] = nil
		n.chunkFree = n.chunkFree[:k-1]
		return c[:0]
	}
	return nil
}

// putChunk returns a delivered chunk to the free list.
func (n *busNode) putChunk(c []byte) {
	n.chunkFree = append(n.chunkFree, c)
}

// Bus is the building's shared field network.
type Bus struct {
	nodes []*busNode
	tap   func(TapFrame)
	taps  []func(TapFrame)
	guard func(from, to NodeID, port Port) bool
	fault func(from, to NodeID, port Port, age int) BusFault
	// phFlush books host time spent inside the two-phase delivery barrier;
	// nil (discarding) until Instrument.
	phFlush *perf.Phase
}

// BusFault is the fault hook's verdict on one queued frame or deferred dial.
// The zero value delivers normally. Hold wins over Drop, Drop over Dup.
type BusFault struct {
	// Drop discards the frame (or refuses the dial) — a lossy link.
	Drop bool
	// Hold keeps the frame (or dial) queued across this Flush; the hook is
	// consulted again next barrier with an incremented age. Partitions and
	// delays are expressed as Hold windows.
	Hold bool
	// Dup delivers the frame twice, back to back — a chattering repeater.
	// Meaningless for dials.
	Dup bool
}

// TapFrame is one delivered chunk, as seen by a bus tap.
type TapFrame struct {
	From, To NodeID
	Port     Port
	// Payload is a copy; taps may retain it.
	Payload []byte
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{}
}

// AddNode attaches a node. A nil stack attaches an originate-only node
// (it can dial other nodes but exposes no ports). Call during setup, before
// any board runs.
func (b *Bus) AddNode(name string, stack *Stack) NodeID {
	b.nodes = append(b.nodes, &busNode{name: name, stack: stack})
	return NodeID(len(b.nodes) - 1)
}

// NodeName returns the name given at AddNode.
func (b *Bus) NodeName(id NodeID) string { return b.nodes[id].name }

// Nodes reports the number of attached nodes.
func (b *Bus) Nodes() int { return len(b.nodes) }

// Instrument binds the bus to a host-side profiler: every Flush barrier books
// into the "bus.flush" phase. Flush runs on the single coordinator goroutine,
// serially with board stepping, so its share of wall-clock time is exactly the
// cost the two-phase determinism design pays. Nil-safe.
func (b *Bus) Instrument(p *perf.Profiler) { b.phFlush = p.HotPhase("bus.flush") }

// SetTap installs fn to observe every delivered chunk during Flush — the
// shared-medium exposure an on-bus attacker exploits to capture frames for
// replay. Only one tap is supported; nil removes it.
func (b *Bus) SetTap(fn func(TapFrame)) { b.tap = fn }

// AddTap appends a system tap that observes every delivered chunk alongside
// the SetTap tap. System taps are how legitimate passive equipment (the
// standby head-end watching the primary's traffic) listens on the shared
// medium without displacing an attacker's SetTap. Taps cannot be removed;
// all taps share one payload copy per delivered chunk.
func (b *Bus) AddTap(fn func(TapFrame)) {
	if fn != nil {
		b.taps = append(b.taps, fn)
	}
}

// SetFaultHook installs fn as the bus fault model, consulted at every Flush
// for each deferred dial and each queued frame (age = how many barriers the
// item has already been held across, starting at 0). The hook runs on the
// coordinator goroutine at the barrier — never on board goroutines — so
// fault plans keyed to the building's virtual round are deterministic at any
// worker count. Frame order within a connection is FIFO-pinned: once one
// frame Holds, every later frame on that connection holds too, regardless of
// its own verdict. A Hold on the deferred dial postpones the whole
// connection (nothing sends before the dial); a Drop on the dial refuses the
// connection exactly like a missing listener. Only one hook is supported;
// nil removes it and restores the zero-cost delivery path.
func (b *Bus) SetFaultHook(fn func(from, to NodeID, port Port, age int) BusFault) { b.fault = fn }

// SetDialGuard installs fn as the bus admission policy: each queued dial is
// submitted to it once, at the Flush that would perform the deferred stack
// dial, and a false return refuses the connection exactly as a missing
// listener would. The guard runs on the coordinator goroutine between
// rounds — with every board engine parked — so it may inspect and mutate
// cross-board monitor state deterministically. Only one guard is supported;
// nil removes it (the legacy open bus).
func (b *Bus) SetDialGuard(fn func(from, to NodeID, port Port) bool) { b.guard = fn }

// Dial opens a connection from one node toward a port on another. The actual
// stack dial is deferred to the next Flush (the bus has store-and-forward
// latency of one round), so Dial itself never fails: refusal surfaces on the
// connection afterwards. Call only from the owning node's goroutine (its
// board engine) or, for originate-only nodes, from the coordinator between
// rounds.
func (b *Bus) Dial(from, to NodeID, port Port) *BusConn {
	node := b.nodes[from]
	c := &BusConn{bus: b, from: from, to: to, port: port}
	node.conns = append(node.conns, c)
	return c
}

// Flush runs one delivery barrier. It must be called from the coordinator
// while every board engine is parked: it performs the queued dials, pushes
// queued chunks into target stacks (waking blocked readers), and drains each
// connection's responses into its inbox, all in fixed order.
//
// Finished connections (refused, or torn down by Close) are compacted out of
// the flush list here: they can never carry traffic again, and a building's
// connection-per-exchange head-end would otherwise grow every node's list
// without bound, turning the barrier O(rounds²). The owner keeps its BusConn
// handle — Refused, ReadAll, and Closed keep answering from the conn's own
// state after compaction.
func (b *Bus) Flush() {
	sc := b.phFlush.Begin()
	defer sc.End()
	for _, node := range b.nodes {
		live := node.conns[:0]
		for _, c := range node.conns {
			if b.fault == nil {
				b.flushConn(node, c)
			} else {
				b.flushConnFaulty(node, c)
			}
			if c.refused || c.done {
				continue
			}
			live = append(live, c)
		}
		for i := len(live); i < len(node.conns); i++ {
			node.conns[i] = nil
		}
		node.conns = live
	}
}

func (b *Bus) flushConn(node *busNode, c *BusConn) {
	if c.refused || c.done {
		c.recycleOutbox(node)
		return
	}
	if c.host == nil {
		if b.guard != nil && !b.guard(c.from, c.to, c.port) {
			c.refused = true
			c.recycleOutbox(node)
			return
		}
		target := b.nodes[c.to]
		if target.stack == nil {
			c.refused = true
			c.recycleOutbox(node)
			return
		}
		host, err := target.stack.Dial(c.port)
		if err != nil {
			// ErrNoListener or ErrBacklogFull: the bus reports both as a
			// refused connection, like a RST.
			c.refused = true
			c.recycleOutbox(node)
			return
		}
		c.host = host
	}
	for _, chunk := range c.outbox {
		if err := c.host.Write(chunk); err != nil {
			c.eof = true
			break
		}
		if b.tap != nil || len(b.taps) > 0 {
			b.deliverTap(c.from, c.to, c.port, chunk)
		}
	}
	c.recycleOutbox(node)
	if data := c.host.ReadAll(); len(data) > 0 {
		if len(c.inbox) == 0 {
			// ReadAll hands over ownership of its buffer; adopt it outright.
			c.inbox = data
		} else {
			c.inbox = append(c.inbox, data...)
		}
	}
	if c.host.Closed() {
		c.eof = true
	}
	if c.closeReq {
		c.host.Close()
		c.done = true
	}
}

// deliverTap fans one delivered chunk out to every installed tap. All taps
// share a single payload copy; taps may retain it.
func (b *Bus) deliverTap(from, to NodeID, port Port, chunk []byte) {
	cp := make([]byte, len(chunk))
	copy(cp, chunk)
	f := TapFrame{From: from, To: to, Port: port, Payload: cp}
	if b.tap != nil {
		b.tap(f)
	}
	for _, fn := range b.taps {
		fn(f)
	}
}

// flushConnFaulty is flushConn with the fault hook interposed. Frames move
// from the outbox into a held queue carrying per-frame ages; at each barrier
// the hook adjudicates them oldest first, FIFO-pinned (the first Hold blocks
// everything behind it). A connection torn down by Close while the hook
// holds its frames discards them — the frames were in flight on a faulted
// link when the endpoint gave up, so they are lost, not delivered late.
func (b *Bus) flushConnFaulty(node *busNode, c *BusConn) {
	if c.refused || c.done {
		c.recycleHeld(node)
		c.recycleOutbox(node)
		return
	}
	if c.host == nil {
		v := b.fault(c.from, c.to, c.port, c.dialAge)
		switch {
		case v.Hold:
			c.dialAge++
			if c.closeReq {
				// The dialer hung up before the faulted link ever carried the
				// dial: nothing to tear down on the far side.
				c.recycleHeld(node)
				c.recycleOutbox(node)
				c.done = true
			}
			return
		case v.Drop:
			c.refused = true
			c.recycleHeld(node)
			c.recycleOutbox(node)
			return
		}
		// The fault hook released the dial; the admission guard runs now, at
		// the flush that actually performs it.
		if b.guard != nil && !b.guard(c.from, c.to, c.port) {
			c.refused = true
			c.recycleHeld(node)
			c.recycleOutbox(node)
			return
		}
		target := b.nodes[c.to]
		if target.stack == nil {
			c.refused = true
			c.recycleHeld(node)
			c.recycleOutbox(node)
			return
		}
		host, err := target.stack.Dial(c.port)
		if err != nil {
			c.refused = true
			c.recycleHeld(node)
			c.recycleOutbox(node)
			return
		}
		c.host = host
	}
	for _, chunk := range c.outbox {
		c.held = append(c.held, chunk)
		c.heldAge = append(c.heldAge, 0)
	}
	for i := range c.outbox {
		c.outbox[i] = nil
	}
	c.outbox = c.outbox[:0]
	kept := 0
	blocked := false
	for i, chunk := range c.held {
		if c.eof {
			node.putChunk(chunk)
			continue
		}
		if !blocked {
			v := b.fault(c.from, c.to, c.port, c.heldAge[i])
			switch {
			case v.Hold:
				blocked = true
			case v.Drop:
				node.putChunk(chunk)
				continue
			default:
				if err := c.host.Write(chunk); err != nil {
					c.eof = true
					node.putChunk(chunk)
					continue
				}
				if b.tap != nil || len(b.taps) > 0 {
					b.deliverTap(c.from, c.to, c.port, chunk)
				}
				if v.Dup {
					if err := c.host.Write(chunk); err != nil {
						c.eof = true
					} else if b.tap != nil || len(b.taps) > 0 {
						b.deliverTap(c.from, c.to, c.port, chunk)
					}
				}
				node.putChunk(chunk)
				continue
			}
		}
		c.held[kept] = chunk
		c.heldAge[kept] = c.heldAge[i] + 1
		kept++
	}
	for i := kept; i < len(c.held); i++ {
		c.held[i] = nil
	}
	c.held = c.held[:kept]
	c.heldAge = c.heldAge[:kept]
	if data := c.host.ReadAll(); len(data) > 0 {
		if len(c.inbox) == 0 {
			c.inbox = data
		} else {
			c.inbox = append(c.inbox, data...)
		}
	}
	if c.host.Closed() {
		c.eof = true
	}
	if c.closeReq {
		c.recycleHeld(node)
		c.host.Close()
		c.done = true
	}
}

// BusConn is one node's handle on a cross-board connection. All methods
// must be called from the owning node's goroutine (see Bus.Dial); state
// transitions driven by the far side land at the next Flush.
type BusConn struct {
	bus      *Bus
	from, to NodeID
	port     Port

	host     *HostConn // nil until the deferred dial succeeds
	outbox   [][]byte  // chunks queued for the next Flush
	inbox    []byte    // responses drained by the last Flush
	refused  bool
	eof      bool
	closeReq bool
	done     bool

	// Fault-hook state (untouched when no hook is installed): frames held
	// across barriers with their per-frame ages, and how many barriers the
	// deferred dial has been held.
	held    [][]byte
	heldAge []int
	dialAge int
}

// Write queues one chunk for delivery at the next Flush. The bytes are
// copied (into a chunk recycled from the owning node's free list), so the
// caller may reuse p.
func (c *BusConn) Write(p []byte) error {
	if c.refused {
		return fmt.Errorf("%w: bus node %d port %d", ErrNoListener, c.to, c.port)
	}
	if c.eof || c.closeReq || c.done {
		return ErrConnClosed
	}
	cp := append(c.bus.nodes[c.from].getChunk(), p...)
	c.outbox = append(c.outbox, cp)
	return nil
}

// recycleOutbox returns delivered (or dropped) chunks to the owning node's
// free list and resets the outbox for reuse. Called only at the Flush
// barrier. The target stack copied each chunk on Write, so nothing retains
// the recycled bytes.
func (c *BusConn) recycleOutbox(node *busNode) {
	for i, chunk := range c.outbox {
		node.putChunk(chunk)
		c.outbox[i] = nil
	}
	c.outbox = c.outbox[:0]
}

// recycleHeld returns fault-held chunks to the owning node's free list —
// frames lost on a faulted link when their connection died.
func (c *BusConn) recycleHeld(node *busNode) {
	for i, chunk := range c.held {
		node.putChunk(chunk)
		c.held[i] = nil
	}
	c.held = c.held[:0]
	c.heldAge = c.heldAge[:0]
}

// ReadAll drains everything the far side has sent up to the last Flush.
// It never blocks; nil means nothing pending.
func (c *BusConn) ReadAll() []byte {
	if len(c.inbox) == 0 {
		return nil
	}
	out := c.inbox
	c.inbox = nil
	return out
}

// Refused reports that the target had no listener (or a full backlog) when
// the deferred dial ran.
func (c *BusConn) Refused() bool { return c.refused }

// Closed reports that the far side has closed (EOF); queued responses may
// still be pending in the inbox.
func (c *BusConn) Closed() bool { return c.eof || c.done }

// Close requests teardown; the far side observes EOF at the next Flush.
func (c *BusConn) Close() { c.closeReq = true }
