package plant

import (
	"testing"
	"time"

	"mkbas/internal/machine"
)

func BenchmarkRoomSync(b *testing.B) {
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), DefaultConfig())
	room.setHeater(true)
	c := m.Clock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(c.Now().Add(time.Second), func() {})
		// advance lazily through Temperature (the hot path drivers hit)
		_ = room.Temperature()
	}
}

func BenchmarkSensorEncodeDecode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if DecodeTemp(EncodeTemp(21.37)) < 21 {
			b.Fatal("bad codec")
		}
	}
}
