package vnet

import (
	"errors"
	"testing"
)

// faultSwitch is a settable fault hook: tests mutate the verdict between
// barriers and count how often the hook is consulted.
type faultSwitch struct {
	verdict BusFault
	calls   int
}

func (f *faultSwitch) hook(from, to NodeID, port Port, age int) BusFault {
	f.calls++
	return f.verdict
}

func TestBusFaultHoldThenReleaseDeliversInOrder(t *testing.T) {
	bus, _, b, l := busPair(t)
	var order []string
	bus.SetTap(func(f TapFrame) { order = append(order, string(f.Payload)) })
	fs := &faultSwitch{}
	bus.SetFaultHook(fs.hook)

	c := bus.Dial(0, 1, 47808)
	bus.Flush() // dial released (zero verdict)
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}

	_ = c.Write([]byte("one"))
	_ = c.Write([]byte("two"))
	fs.verdict = BusFault{Hold: true}
	bus.Flush()
	bus.Flush()
	if len(order) != 0 {
		t.Fatalf("frames leaked through a Hold window: %v", order)
	}
	if _, err := b.BoardRead(conn, 0); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("board read during hold err = %v, want ErrWouldBlock", err)
	}

	fs.verdict = BusFault{}
	bus.Flush()
	if len(order) != 2 || order[0] != "one" || order[1] != "two" {
		t.Fatalf("released delivery order = %v, want [one two]", order)
	}
	got, err := b.BoardRead(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	rest, _ := b.BoardRead(conn, 0)
	if string(got)+string(rest) != "onetwo" {
		t.Fatalf("board saw %q + %q, want onetwo", got, rest)
	}
}

func TestBusFaultHoldAgesIncrement(t *testing.T) {
	bus, _, _, _ := busPair(t)
	var ages []int
	bus.SetFaultHook(func(from, to NodeID, port Port, age int) BusFault {
		ages = append(ages, age)
		return BusFault{Hold: true}
	})
	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("x"))
	bus.Flush() // dial age 0
	bus.Flush() // dial age 1
	bus.Flush() // dial age 2
	want := []int{0, 1, 2}
	if len(ages) != len(want) {
		t.Fatalf("hook consultations = %v, want %v", ages, want)
	}
	for i := range want {
		if ages[i] != want[i] {
			t.Fatalf("age[%d] = %d, want %d (full: %v)", i, ages[i], want[i], ages)
		}
	}
}

func TestBusFaultCloseDuringHoldDiscardsHeldFrames(t *testing.T) {
	bus, _, b, l := busPair(t)
	var order []string
	bus.SetTap(func(f TapFrame) { order = append(order, string(f.Payload)) })
	fs := &faultSwitch{}
	bus.SetFaultHook(fs.hook)

	c := bus.Dial(0, 1, 47808)
	bus.Flush()
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}

	// Two frames go into flight on the link, then a partition holds them and
	// the sender gives up. The frames were lost on the faulted link: they must
	// never arrive late after the partition heals.
	_ = c.Write([]byte("lost1"))
	_ = c.Write([]byte("lost2"))
	fs.verdict = BusFault{Hold: true}
	bus.Flush()
	c.Close()
	bus.Flush()
	if !c.Closed() {
		t.Fatal("sender conn not done after Close during hold")
	}

	fs.verdict = BusFault{} // partition heals
	bus.Flush()
	bus.Flush()
	if len(order) != 0 {
		t.Fatalf("held frames delivered after Close: %v", order)
	}
	if _, err := b.BoardRead(conn, 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("board read after teardown err = %v, want ErrConnClosed", err)
	}
}

func TestBusFaultCloseDuringDialHold(t *testing.T) {
	bus, _, b, l := busPair(t)
	fs := &faultSwitch{verdict: BusFault{Hold: true}}
	bus.SetFaultHook(fs.hook)

	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("never"))
	bus.Flush() // dial held
	c.Close()
	bus.Flush() // dialer hangs up while the dial is still in flight
	if !c.Closed() {
		t.Fatal("conn not done after Close during dial hold")
	}

	// The far side never saw the dial, so healing the partition must not
	// conjure a connection out of the abandoned attempt.
	fs.verdict = BusFault{}
	bus.Flush()
	if _, err := b.Accept(l); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("listener accept err = %v, want ErrWouldBlock (no dial ever carried)", err)
	}
}

func TestBusFaultDialDropRefusesLikeNoListener(t *testing.T) {
	bus, _, _, _ := busPair(t)
	bus.SetFaultHook(func(from, to NodeID, port Port, age int) BusFault {
		return BusFault{Drop: true}
	})
	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("x"))
	bus.Flush()
	if !c.Refused() {
		t.Fatal("dropped dial not refused")
	}
	if err := c.Write([]byte("y")); !errors.Is(err, ErrNoListener) {
		t.Fatalf("write after drop-refusal err = %v, want ErrNoListener", err)
	}
}

func TestBusFaultDialGuardRunsAtRelease(t *testing.T) {
	// The admission guard must be consulted exactly once, at the Flush where
	// the fault hook releases the dial — never while the partition holds it.
	bus, _, b, l := busPair(t)
	fs := &faultSwitch{verdict: BusFault{Hold: true}}
	bus.SetFaultHook(fs.hook)
	guardCalls := 0
	bus.SetDialGuard(func(from, to NodeID, port Port) bool {
		guardCalls++
		return true
	})

	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("hello"))
	bus.Flush()
	bus.Flush()
	if guardCalls != 0 {
		t.Fatalf("guard consulted %d times while the dial was held, want 0", guardCalls)
	}

	fs.verdict = BusFault{}
	bus.Flush()
	if guardCalls != 1 {
		t.Fatalf("guard consulted %d times at release, want exactly 1", guardCalls)
	}
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.BoardRead(conn, 0); err != nil || string(got) != "hello" {
		t.Fatalf("board read = %q, %v", got, err)
	}
}

func TestBusFaultDialGuardRefusalAfterRelease(t *testing.T) {
	bus, _, b, l := busPair(t)
	fs := &faultSwitch{verdict: BusFault{Hold: true}}
	bus.SetFaultHook(fs.hook)
	bus.SetDialGuard(func(from, to NodeID, port Port) bool { return false })

	c := bus.Dial(0, 1, 47808)
	bus.Flush() // held: the guard's refusal is deferred with the dial
	if c.Refused() {
		t.Fatal("conn refused while the dial was still held")
	}
	fs.verdict = BusFault{}
	bus.Flush()
	if !c.Refused() {
		t.Fatal("guard refusal not applied at the releasing flush")
	}
	if _, err := b.Accept(l); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("listener accept err = %v, want ErrWouldBlock", err)
	}
}

func TestBusFaultDupDeliversTwiceBackToBack(t *testing.T) {
	bus, _, b, l := busPair(t)
	var order []string
	bus.SetTap(func(f TapFrame) { order = append(order, string(f.Payload)) })
	fs := &faultSwitch{}
	bus.SetFaultHook(fs.hook)

	c := bus.Dial(0, 1, 47808)
	bus.Flush()
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}

	_ = c.Write([]byte("A"))
	_ = c.Write([]byte("B"))
	fs.verdict = BusFault{Dup: true}
	bus.Flush()

	// A chattering repeater duplicates each frame in place: A A B B, never
	// interleaved as A B A B.
	want := []string{"A", "A", "B", "B"}
	if len(order) != len(want) {
		t.Fatalf("tap saw %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
	var got []byte
	for {
		chunk, err := b.BoardRead(conn, 0)
		if err != nil {
			break
		}
		got = append(got, chunk...)
	}
	if string(got) != "AABB" {
		t.Fatalf("board byte stream = %q, want AABB", got)
	}
}

func TestBusFaultFIFOPinsFramesBehindFirstHold(t *testing.T) {
	// Once one frame Holds, everything behind it on the connection must wait
	// without being adjudicated — a partitioned link cannot reorder frames.
	bus, _, _, _ := busPair(t)
	var order []string
	bus.SetTap(func(f TapFrame) { order = append(order, string(f.Payload)) })

	frameCalls := 0
	holdFirst := true
	var c *BusConn
	bus.SetFaultHook(func(from, to NodeID, port Port, age int) BusFault {
		if c == nil || c.host == nil {
			return BusFault{} // dial consult: release immediately
		}
		frameCalls++
		if holdFirst {
			return BusFault{Hold: true}
		}
		return BusFault{}
	})

	c = bus.Dial(0, 1, 47808)
	bus.Flush() // establishes the dial
	_ = c.Write([]byte("first"))
	_ = c.Write([]byte("second"))
	bus.Flush()
	if frameCalls != 1 {
		t.Fatalf("hook adjudicated %d frames behind a Hold, want only the first", frameCalls)
	}
	if len(order) != 0 {
		t.Fatalf("frames delivered past a Hold: %v", order)
	}

	holdFirst = false
	bus.Flush()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("post-release order = %v, want [first second]", order)
	}
}
