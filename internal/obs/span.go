package obs

import (
	"fmt"
	"sort"
)

// Outcome classifies how a mediated IPC round trip ended.
type Outcome uint8

const (
	// OutcomeOpen marks a span that has not ended yet.
	OutcomeOpen Outcome = iota
	// OutcomeDelivered means the message made it through mediation.
	OutcomeDelivered
	// OutcomeACMDenied means the MINIX access control matrix refused it.
	OutcomeACMDenied
	// OutcomeCapFault means an seL4 capability lookup failed or lacked
	// rights.
	OutcomeCapFault
	// OutcomeDACDenied means Linux discretionary access control refused it.
	OutcomeDACDenied
	// OutcomeAborted means the peer died or the operation failed for a
	// non-security reason (dead endpoint, bad descriptor, queue removed).
	OutcomeAborted
)

// String names the outcome for reports and trace exports.
func (o Outcome) String() string {
	switch o {
	case OutcomeOpen:
		return "open"
	case OutcomeDelivered:
		return "delivered"
	case OutcomeACMDenied:
		return "acm-denied"
	case OutcomeCapFault:
		return "cap-fault"
	case OutcomeDACDenied:
		return "dac-denied"
	case OutcomeAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// MarshalText makes outcomes render as their names in JSON reports.
func (o Outcome) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// SpanID names one span; the zero SpanID is never issued, so kernels can
// use it as "no span open".
type SpanID uint64

// Span is one mediated IPC round trip: virtual start/end instants, the
// source and destination names (in the recording kernel's namespace), a
// message label, and the mediation outcome.
type Span struct {
	ID      SpanID  `json:"id"`
	Src     string  `json:"src"`
	Dst     string  `json:"dst"`
	Label   string  `json:"label"`
	Start   Time    `json:"start_ns"`
	End     Time    `json:"end_ns"`
	Outcome Outcome `json:"outcome"`
}

// Duration is the span's virtual length.
func (s Span) Duration() Time { return s.End - s.Start }

// Tracer records IPC spans. Completed spans live in a bounded ring buffer
// (oldest dropped first); open spans are bounded by the number of blocked
// processes, so they live in a slot slice with a freelist — this keeps
// Begin/End off the map path, which matters because every mediated round
// trip crosses them. The nil Tracer discards everything, so kernels can
// instrument unconditionally.
type Tracer struct {
	now     func() Time
	cap     int
	open    []Span // slot storage; a slot is free when its ID is zero
	free    []int32
	done    []Span
	head    int
	nextID  SpanID
	total   int64
	dropped int64
	counts  [OutcomeAborted + 1]int64
}

// NewTracer creates a tracer; capacity <= 0 means 16384 completed spans.
func NewTracer(now func() Time, capacity int) *Tracer {
	if now == nil {
		now = func() Time { return 0 }
	}
	if capacity <= 0 {
		capacity = 16384
	}
	// The ring grows lazily via append toward cap rather than preallocating:
	// a 64-board building would otherwise sit on cap·boards spans of mostly
	// idle, pointer-laden memory that every GC cycle rescans. Growth copies
	// are geometric (a handful per board lifetime), so the IPC hot path still
	// pays amortized O(1); once len reaches cap the ring never reallocates.
	return &Tracer{now: now, cap: capacity}
}

// Span handles pack (sequence, slot) so End can index the open slot
// directly and still detect stale or double-End handles by sequence
// mismatch. Slots are bounded by concurrently open spans, so 24 bits is
// far more than any simulated board can block at once.
const spanSlotBits = 24

// Begin opens a span starting now and returns its handle.
func (t *Tracer) Begin(src, dst, label string) SpanID {
	if t == nil {
		return 0
	}
	t.nextID++
	var slot int
	if n := len(t.free); n > 0 {
		slot = int(t.free[n-1])
		t.free = t.free[:n-1]
	} else {
		slot = len(t.open)
		t.open = append(t.open, Span{})
	}
	t.open[slot] = Span{ID: t.nextID, Src: src, Dst: dst, Label: label, Start: t.now()}
	return t.nextID<<spanSlotBits | SpanID(slot+1)
}

// End closes the span, stamping the end instant and outcome, and returns
// the completed span. Unknown or zero IDs (including double-End) report
// ok=false and change nothing.
func (t *Tracer) End(id SpanID, outcome Outcome) (Span, bool) {
	if t == nil || id == 0 {
		return Span{}, false
	}
	slot := int(id&(1<<spanSlotBits-1)) - 1
	if slot < 0 || slot >= len(t.open) || t.open[slot].ID != id>>spanSlotBits {
		return Span{}, false
	}
	s := t.open[slot]
	t.open[slot] = Span{}
	t.free = append(t.free, int32(slot))
	s.End = t.now()
	s.Outcome = outcome
	t.push(s)
	return s, true
}

// Emit records a complete zero-length span at the current instant — the
// shape of a denial, which consumes no virtual time.
func (t *Tracer) Emit(src, dst, label string, outcome Outcome) {
	if t == nil {
		return
	}
	t.nextID++
	now := t.now()
	t.push(Span{ID: t.nextID, Src: src, Dst: dst, Label: label, Start: now, End: now, Outcome: outcome})
}

// push books a completed span into the ring.
func (t *Tracer) push(s Span) {
	t.total++
	if int(s.Outcome) < len(t.counts) {
		t.counts[s.Outcome]++
	}
	if len(t.done) < t.cap {
		t.done = append(t.done, s)
		return
	}
	t.done[t.head] = s
	t.head = (t.head + 1) % t.cap
	t.dropped++
}

// Spans returns the retained completed spans sorted by (Start, ID) for
// deterministic export.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.done))
	out = append(out, t.done[t.head:]...)
	out = append(out, t.done[:t.head]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// OpenCount reports how many spans are still open (processes mid-round-trip).
func (t *Tracer) OpenCount() int {
	if t == nil {
		return 0
	}
	return len(t.open) - len(t.free)
}

// Completed reports the lifetime number of completed spans, including ones
// the ring has since dropped.
func (t *Tracer) Completed() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped reports how many completed spans the ring evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// OutcomeCount is one (outcome, lifetime count) row.
type OutcomeCount struct {
	Outcome Outcome `json:"outcome"`
	Count   int64   `json:"count"`
}

// ByOutcome returns lifetime completion counts per outcome, skipping
// outcomes that never occurred, in outcome order.
func (t *Tracer) ByOutcome() []OutcomeCount {
	if t == nil {
		return nil
	}
	var out []OutcomeCount
	for o, n := range t.counts {
		if n > 0 {
			out = append(out, OutcomeCount{Outcome: Outcome(o), Count: n})
		}
	}
	return out
}
