package tenantapi

import (
	"testing"
	"time"

	"mkbas/internal/obs"
)

// TestAPIHotPathZeroAlloc is the tier's allocation gate, the analogue of
// TestE4RoundTripZeroAlloc for the request path: at steady state, a mixed
// stream of served and denied requests — 200s, 403s, 429s, 401s — must not
// allocate. The event ring is deliberately tiny so warmup fills it and
// steady-state emission overwrites in place; metric series and response
// buffers reach capacity during warmup too.
func TestAPIHotPathZeroAlloc(t *testing.T) {
	clk := &testClock{}
	dir := NewDirectory(DirectoryConfig{Seed: 3, Rooms: 8, Occupants: 16, Managers: 2, Vendors: 2})
	events := obs.NewEventLog(clk.now, 8)
	gw := NewGateway(dir, NewSimBackend(8, clk.now), GatewayConfig{
		Now:          clk.now,
		RatePerSec:   2,
		Burst:        4,
		AdmitPerTick: 6,
		TickNs:       int64(time.Millisecond),
		Registry:     obs.NewRegistry(),
		Events:       events,
	})
	occ := dir.Find("occupant-0000")
	mgr := dir.Find("manager-0000")
	ven := dir.Find("vendor-0000")

	reqs := []Request{
		{Token: mgr.Token, Route: RouteStatus, Room: 3},
		{Token: occ.Token, Route: RouteStatus, Room: occ.Room},
		{Token: occ.Token, Route: RouteStatus, Room: (occ.Room + 1) % 8}, // 403 rbac
		{Token: ven.Token, Route: RouteSetpoint, Room: 1, Value: 22},     // 403 rbac
		{Token: mgr.Token, Route: RouteSetpoint, Room: 2, Value: 21.5},   // ok
		{Token: mgr.Token, Route: RouteSetpoint, Room: 2, Value: 99},     // 400
		{Token: "tok-0000000000000000", Route: RouteWhoAmI},              // 401
		{Token: occ.Token, Route: RouteWhoAmI},                           // ok or 429
		{Token: occ.Token, Route: RouteWhoAmI},                           // 429 (2/s bucket)
		{Token: ven.Token, Route: RouteDiagnostics},                      // ok
		{Token: mgr.Token, Route: RouteStatus, Room: 99},                 // 404
		{Token: mgr.Token, Route: RouteStatus, Room: 4},                  // overload at tick tail
	}
	var resp Response
	slice := func() {
		for i := range reqs {
			// A small step per request: buckets partially refill, admission
			// windows roll over, so all layers stay exercised.
			clk.step(200 * time.Microsecond)
			gw.Handle(&reqs[i], &resp)
		}
	}
	// Warm up: fill the event ring, grow the body buffer, and create every
	// (kind, mechanism, denied) totals key this mix can produce.
	for i := 0; i < 64; i++ {
		slice()
	}
	if allocs := testing.AllocsPerRun(50, slice); allocs != 0 {
		t.Errorf("steady-state request mix allocated %.1f times per %d-request slice, want 0", allocs, len(reqs))
	}
	if gw.Served() == 0 || gw.Denied(OutcomeForbidden) == 0 || gw.Denied(OutcomeRateLimited) == 0 || gw.Denied(OutcomeUnauthorized) == 0 {
		t.Fatal("warmup mix did not exercise all mediation layers")
	}
}
