package lab

import (
	"bytes"
	"strings"
	"testing"

	"mkbas/internal/perf"
)

// profileSweep is a small-but-plural campaign: several shards so an 8-worker
// pool actually exercises concurrent phase accumulation.
func profileSweep(t *testing.T) Sweep {
	t.Helper()
	s, err := ParseSweep("platforms=paper;actions=spoof-sensor,kill-controller")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPerfSkeletonDeterministicAcrossWorkers is the tentpole's determinism
// claim: the untimed profile — phase set, name ordering, per-phase counts —
// is a pure function of the campaign, so Snapshot(false).JSON() must be
// byte-identical whether the shards ran serially or 8 at a time.
func TestPerfSkeletonDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		prof := perf.New(perf.Options{})
		if _, err := Run(profileSweep(t), Options{Workers: workers, Profiler: prof}); err != nil {
			t.Fatal(err)
		}
		out, err := prof.Snapshot(false).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("perf skeleton diverged between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
	for _, phase := range []string{"lab.shard", "lab.merge", "bas.deploy", "engine.run", "engine.dispatch", "monitor.observe"} {
		if !bytes.Contains(serial, []byte(phase)) {
			// monitor.observe only appears when the sweep enables the monitor.
			if phase == "monitor.observe" {
				continue
			}
			t.Errorf("skeleton lacks phase %q:\n%s", phase, serial)
		}
	}
}

// TestPerfChromeTraceGolden locks the normalized host-trace shape for a tiny
// serial sweep: at workers=1 every shard lands on the same track in shard
// order, and normalization replaces host timestamps with ordinals — so the
// trace bytes are reproducible run to run.
func TestPerfChromeTraceGolden(t *testing.T) {
	run := func() []byte {
		prof := perf.New(perf.Options{Timeline: true})
		sweep, err := ParseSweep("platforms=minix3-acm;actions=spoof-sensor,kill-controller")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(sweep, Options{Workers: 1, Profiler: prof}); err != nil {
			t.Fatal(err)
		}
		out, err := prof.ChromeTrace(true)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("normalized serial trace not reproducible:\n--- run 1\n%s\n--- run 2\n%s", first, second)
	}
	trace := string(first)
	for _, want := range []string{
		`"name": "thread_name"`,    // track metadata present
		`"lab-worker-00"`,          // the single worker's track
		`"shard-00"`, `"shard-01"`, // both shards appear as labelled slices
		`"ph": "X"`, `"cat": "host"`, // complete events on the host category
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace lacks %s:\n%s", want, trace)
		}
	}
}

// TestPoolGaugesExported checks the worker-pool utilization gauges land in
// the timed snapshot (and stay out of the untimed skeleton).
func TestPoolGaugesExported(t *testing.T) {
	prof := perf.New(perf.Options{})
	if _, err := Run(profileSweep(t), Options{Workers: 2, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	timed := prof.Snapshot(true)
	gauges := map[string]int64{}
	for _, g := range timed.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["lab.workers"] != 2 {
		t.Fatalf("lab.workers gauge = %d, want 2 (gauges: %v)", gauges["lab.workers"], gauges)
	}
	if _, ok := gauges["lab.max_inflight"]; !ok {
		t.Fatalf("lab.max_inflight gauge missing (gauges: %v)", gauges)
	}
	if _, ok := gauges["lab.queue_high_water"]; !ok {
		t.Fatalf("lab.queue_high_water gauge missing (gauges: %v)", gauges)
	}
	if len(prof.Snapshot(false).Gauges) != 0 {
		t.Fatal("untimed skeleton leaked host-dependent gauges")
	}
}
