package sel4

import (
	"errors"
	"testing"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/plant"
	"mkbas/internal/vnet"
)

func newBoard(t *testing.T) (*machine.Machine, *Kernel) {
	t.Helper()
	m := machine.New(machine.Config{})
	k := NewKernel(m, Config{})
	t.Cleanup(m.Shutdown)
	return m, k
}

func mustStart(t *testing.T, k *Kernel, tcbID ObjID) {
	t.Helper()
	if err := k.Start(tcbID); err != nil {
		t.Fatalf("Start(%d): %v", tcbID, err)
	}
}

func mustInstall(t *testing.T, k *Kernel, tcbID ObjID, slot CPtr, c Capability) {
	t.Helper()
	if err := k.InstallCap(tcbID, slot, c); err != nil {
		t.Fatalf("InstallCap(%d,%d): %v", tcbID, slot, err)
	}
}

func TestSendRecvThroughSharedEndpoint(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	var got RecvResult
	var recvErr error
	server := k.CreateThread("server", 7, func(api *API) {
		got, recvErr = api.Recv(1)
	})
	client := k.CreateThread("client", 7, func(api *API) {
		msg := Msg{Label: 42}
		msg.Words[0] = 7
		if err := api.Send(1, msg); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	mustInstall(t, k, server, 1, EndpointCap(ep, CapRead, 0))
	mustInstall(t, k, client, 1, EndpointCap(ep, CapWrite, 99))
	mustStart(t, k, server)
	mustStart(t, k, client)
	m.Run(time.Second)
	if recvErr != nil {
		t.Fatalf("recv: %v", recvErr)
	}
	if got.Msg.Label != 42 || got.Msg.Words[0] != 7 {
		t.Fatalf("got %+v", got.Msg)
	}
	if got.Badge != 99 {
		t.Fatalf("badge = %d, want minted 99", got.Badge)
	}
}

func TestSendWithoutCapabilityFails(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	_ = ep
	var sendErr error
	lone := k.CreateThread("lone", 7, func(api *API) {
		sendErr = api.Send(1, Msg{Label: 1}) // slot 1 is empty
	})
	mustStart(t, k, lone)
	m.Run(time.Second)
	if !errors.Is(sendErr, ErrInvalidCap) {
		t.Fatalf("err = %v, want ErrInvalidCap", sendErr)
	}
	if k.Stats().InvalidCapErrs == 0 {
		t.Fatal("invalid-cap counter not incremented")
	}
}

func TestRightsEnforced(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	var sendErr, recvErr error
	readOnly := k.CreateThread("reader", 7, func(api *API) {
		sendErr = api.Send(1, Msg{}) // read-only cap: send must fail
	})
	writeOnly := k.CreateThread("writer", 7, func(api *API) {
		_, recvErr = api.NBRecv(1) // write-only cap: recv must fail
	})
	mustInstall(t, k, readOnly, 1, EndpointCap(ep, CapRead, 0))
	mustInstall(t, k, writeOnly, 1, EndpointCap(ep, CapWrite, 0))
	mustStart(t, k, readOnly)
	mustStart(t, k, writeOnly)
	m.Run(time.Second)
	if !errors.Is(sendErr, ErrNoRights) {
		t.Fatalf("send err = %v, want ErrNoRights", sendErr)
	}
	if !errors.Is(recvErr, ErrNoRights) {
		t.Fatalf("recv err = %v, want ErrNoRights", recvErr)
	}
}

func TestCallReplyRPC(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("rpc")
	var reply Msg
	var callErr error
	server := k.CreateThread("server", 7, func(api *API) {
		res, err := api.Recv(1)
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		out := Msg{Label: res.Msg.Label + 1}
		out.Words[0] = res.Msg.Words[0] * 2
		if err := api.Reply(out); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	client := k.CreateThread("client", 7, func(api *API) {
		msg := Msg{Label: 10}
		msg.Words[0] = 21
		reply, callErr = api.Call(1, msg)
	})
	mustInstall(t, k, server, 1, EndpointCap(ep, CapRead, 0))
	mustInstall(t, k, client, 1, EndpointCap(ep, RightsRWG, 5))
	mustStart(t, k, server)
	mustStart(t, k, client)
	m.Run(time.Second)
	if callErr != nil {
		t.Fatalf("call: %v", callErr)
	}
	if reply.Label != 11 || reply.Words[0] != 42 {
		t.Fatalf("reply = %+v", reply)
	}
	if k.Stats().Calls != 1 || k.Stats().Replies != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

func TestCallRequiresGrant(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("rpc")
	var callErr error
	client := k.CreateThread("client", 7, func(api *API) {
		_, callErr = api.Call(1, Msg{})
	})
	mustInstall(t, k, client, 1, EndpointCap(ep, RightsRW, 0)) // no grant
	mustStart(t, k, client)
	m.Run(time.Second)
	if !errors.Is(callErr, ErrNoRights) {
		t.Fatalf("call err = %v, want ErrNoRights without grant", callErr)
	}
}

func TestReplyWithoutPendingCapFails(t *testing.T) {
	m, k := newBoard(t)
	var replyErr error
	lone := k.CreateThread("lone", 7, func(api *API) {
		replyErr = api.Reply(Msg{})
	})
	mustStart(t, k, lone)
	m.Run(time.Second)
	if !errors.Is(replyErr, ErrNoReplyCap) {
		t.Fatalf("err = %v, want ErrNoReplyCap", replyErr)
	}
}

func TestCallAbortedWhenServerDies(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("rpc")
	var callErr error
	server := k.CreateThread("server", 7, func(api *API) {
		if _, err := api.Recv(1); err != nil {
			return
		}
		panic("server crashes before replying")
	})
	client := k.CreateThread("client", 7, func(api *API) {
		_, callErr = api.Call(1, Msg{Label: 1})
	})
	mustInstall(t, k, server, 1, EndpointCap(ep, CapRead, 0))
	mustInstall(t, k, client, 1, EndpointCap(ep, RightsRWG, 0))
	mustStart(t, k, server)
	mustStart(t, k, client)
	m.Run(time.Second)
	if !errors.Is(callErr, ErrCallAborted) {
		t.Fatalf("call err = %v, want ErrCallAborted", callErr)
	}
}

func TestNBSendDropsWithoutReceiver(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	var err1 error
	sender := k.CreateThread("sender", 7, func(api *API) {
		err1 = api.NBSend(1, Msg{Label: 1})
	})
	mustInstall(t, k, sender, 1, EndpointCap(ep, CapWrite, 0))
	mustStart(t, k, sender)
	res := m.Run(time.Second)
	if err1 != nil {
		t.Fatalf("NBSend err = %v, want silent drop", err1)
	}
	if res.Reason != machine.StopAllExited {
		t.Fatalf("run = %v, want all-exited (sender must not block)", res.Reason)
	}
}

func TestCapTransferRequiresGrantAndMovesCap(t *testing.T) {
	m, k := newBoard(t)
	chanEP := k.CreateEndpoint("chan")
	secretEP := k.CreateEndpoint("secret")

	var res RecvResult
	var recvErr error
	var noGrantErr error
	receiver := k.CreateThread("receiver", 7, func(api *API) {
		res, recvErr = api.Recv(1)
	})
	sender := k.CreateThread("sender", 7, func(api *API) {
		slot := CPtr(2)
		// First attempt without grant must fail.
		noGrantErr = api.Send(3, Msg{TransferCap: &slot})
		// Second attempt with grant succeeds.
		if err := api.Send(1, Msg{Label: 8, TransferCap: &slot}); err != nil {
			t.Errorf("granted send: %v", err)
		}
	})
	mustInstall(t, k, receiver, 1, EndpointCap(chanEP, CapRead, 0))
	mustInstall(t, k, sender, 1, EndpointCap(chanEP, CapWrite|CapGrant, 0))
	mustInstall(t, k, sender, 2, EndpointCap(secretEP, RightsRW, 0))
	mustInstall(t, k, sender, 3, EndpointCap(chanEP, CapWrite, 0)) // no grant
	mustStart(t, k, receiver)
	mustStart(t, k, sender)
	m.Run(time.Second)

	if !errors.Is(noGrantErr, ErrNoRights) {
		t.Fatalf("no-grant transfer err = %v, want ErrNoRights", noGrantErr)
	}
	if recvErr != nil {
		t.Fatalf("recv: %v", recvErr)
	}
	if res.CapSlot == nil {
		t.Fatal("no capability arrived")
	}
	caps, err := k.CapsOf(receiver)
	if err != nil {
		t.Fatal(err)
	}
	got := caps[*res.CapSlot]
	if got.Kind != KindEndpoint || got.Object != secretEP {
		t.Fatalf("transferred cap = %v, want endpoint %d", got, secretEP)
	}
}

func TestAttackerNeverGainsCaps(t *testing.T) {
	// The paper's monotonicity argument: an untrusted thread that can only
	// send capabilities away to trusted threads never gains new ones.
	m, k := newBoard(t)
	rpcEP := k.CreateEndpoint("rpc")

	trusted := k.CreateThread("trusted", 7, func(api *API) {
		for {
			if _, err := api.Recv(1); err != nil {
				return
			}
			api.Reply(Msg{Label: 0}) // never transfers a cap back
		}
	})
	var before, after int
	attacker := k.CreateThread("attacker", 7, func(api *API) {
		for i := 0; i < 20; i++ {
			if _, err := api.Call(1, Msg{Label: uint64(i)}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	mustInstall(t, k, trusted, 1, EndpointCap(rpcEP, CapRead, 0))
	mustInstall(t, k, attacker, 1, EndpointCap(rpcEP, RightsRWG, 104))
	before, _ = k.CapCount(attacker)
	mustStart(t, k, trusted)
	mustStart(t, k, attacker)
	m.Run(time.Second)
	after, _ = k.CapCount(attacker)
	if after > before {
		t.Fatalf("attacker gained capabilities: %d -> %d", before, after)
	}
}

func TestBruteForceEnumerationFindsOnlyGrantedCaps(t *testing.T) {
	// Section IV-D.3: "a simple brute-forcing program which attempts to
	// enumerate all the seL4 capability slots ... was unsuccessful in
	// finding any additional capabilities."
	m, k := newBoard(t)
	rpcEP := k.CreateEndpoint("rpc")
	victim := k.CreateThread("victim", 7, func(api *API) {
		api.Sleep(time.Hour)
	})
	_ = victim

	usable := 0
	attacker := k.CreateThread("attacker", 7, func(api *API) {
		for slot := CPtr(0); slot < CSpaceSize; slot++ {
			if err := api.NBSend(slot, Msg{Label: 1}); err == nil {
				usable++
			}
			if err := api.TCBSuspend(slot); err == nil {
				usable++ // would be catastrophic
			}
		}
	})
	mustInstall(t, k, attacker, 7, EndpointCap(rpcEP, RightsRWG, 104))
	mustStart(t, k, victim)
	mustStart(t, k, attacker)
	m.Run(time.Minute)
	if usable != 1 {
		t.Fatalf("attacker found %d usable slots, want exactly its 1 endpoint", usable)
	}
	if k.Stats().InvalidCapErrs < 2*CSpaceSize-3 {
		t.Fatalf("InvalidCapErrs = %d, want near %d", k.Stats().InvalidCapErrs, 2*CSpaceSize)
	}
	if k.Stats().Suspends != 0 {
		t.Fatal("brute force managed a suspend")
	}
}

func TestTCBSuspendWithCapWorks(t *testing.T) {
	m, k := newBoard(t)
	victim := k.CreateThread("victim", 7, func(api *API) {
		api.Sleep(time.Hour)
	})
	var susErr error
	killer := k.CreateThread("killer", 7, func(api *API) {
		susErr = api.TCBSuspend(4)
	})
	mustInstall(t, k, killer, 4, TCBCap(victim, CapWrite))
	mustStart(t, k, victim)
	mustStart(t, k, killer)
	m.Run(time.Second)
	if susErr != nil {
		t.Fatalf("suspend: %v", susErr)
	}
	if k.ThreadAlive(victim) {
		t.Fatal("victim survived a legitimate suspend")
	}
}

func TestCapMintNarrowsOnly(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	var caps []Capability
	thread := k.CreateThread("minter", 7, func(api *API) {
		if err := api.CapMint(1, 2, 77, CapRead); err != nil {
			t.Errorf("mint: %v", err)
		}
		// Attempt to widen: mint from the read-only copy requesting rwg.
		if err := api.CapMint(2, 3, 0, RightsRWG); err != nil {
			t.Errorf("mint widen attempt: %v", err)
		}
	})
	mustInstall(t, k, thread, 1, EndpointCap(ep, RightsRW, 0))
	mustStart(t, k, thread)
	m.Run(time.Second)
	caps, _ = k.CapsOf(thread)
	if caps[2].Rights != CapRead || caps[2].Badge != 77 {
		t.Fatalf("minted cap = %v, want r-- badge 77", caps[2])
	}
	if caps[3].Rights != CapRead {
		t.Fatalf("widened cap = %v; rights must never widen", caps[3])
	}
}

func TestCapDeleteAndCopy(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	thread := k.CreateThread("worker", 7, func(api *API) {
		if err := api.CapCopy(1, 5); err != nil {
			t.Errorf("copy: %v", err)
		}
		if err := api.CapDelete(1); err != nil {
			t.Errorf("delete: %v", err)
		}
		if err := api.CapCopy(1, 6); !errors.Is(err, ErrInvalidCap) {
			t.Errorf("copy from deleted = %v, want ErrInvalidCap", err)
		}
	})
	mustInstall(t, k, thread, 1, EndpointCap(ep, RightsRW, 0))
	mustStart(t, k, thread)
	m.Run(time.Second)
	caps, _ := k.CapsOf(thread)
	if caps[1].Kind != 0 || caps[5].Kind != KindEndpoint {
		t.Fatalf("cspace after ops: slot1=%v slot5=%v", caps[1], caps[5])
	}
}

func TestDeviceCapability(t *testing.T) {
	m := machine.New(machine.Config{})
	plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), plant.DefaultConfig()))
	k := NewKernel(m, Config{})
	t.Cleanup(m.Shutdown)

	sensorDev := k.CreateDevice(plant.DevTempSensor)
	var temp float64
	var readErr, deniedErr error
	driver := k.CreateThread("driver", 7, func(api *API) {
		raw, err := api.DevRead(1, plant.RegTempMilliC)
		readErr = err
		temp = plant.DecodeTemp(raw)
		deniedErr = api.DevWrite(1, plant.RegTempMilliC, 0) // read-only cap
	})
	mustInstall(t, k, driver, 1, DeviceCap(sensorDev, CapRead))
	mustStart(t, k, driver)
	m.Run(time.Second)
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if temp < 17 || temp > 19 {
		t.Fatalf("temp = %v, want ~18", temp)
	}
	if !errors.Is(deniedErr, ErrNoRights) {
		t.Fatalf("write err = %v, want ErrNoRights", deniedErr)
	}
}

func TestNetPortCapability(t *testing.T) {
	stack := vnet.NewStack()
	m := machine.New(machine.Config{})
	k := NewKernel(m, Config{Net: stack})
	t.Cleanup(m.Shutdown)

	port := k.CreateNetPort(8080)
	server := k.CreateThread("web", 7, func(api *API) {
		l, err := api.NetListen(1)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := api.NetAccept(l)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		data, err := api.NetRead(conn, 0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		api.NetWrite(conn, append([]byte("ok:"), data...))
		api.NetClose(conn)
	})
	var nocapErr error
	intruder := k.CreateThread("intruder", 7, func(api *API) {
		_, nocapErr = api.NetListen(1) // empty slot
	})
	mustInstall(t, k, server, 1, NetPortCap(port, RightsRW))
	mustStart(t, k, server)
	mustStart(t, k, intruder)
	m.Run(10 * time.Millisecond)

	host, err := stack.Dial(8080)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	host.Write([]byte("hi"))
	m.Run(time.Second)
	if got := string(host.ReadAll()); got != "ok:hi" {
		t.Fatalf("host got %q", got)
	}
	if !errors.Is(nocapErr, ErrInvalidCap) {
		t.Fatalf("intruder err = %v, want ErrInvalidCap", nocapErr)
	}
}

func TestRightsString(t *testing.T) {
	if RightsRWG.String() != "rwg" || CapRead.String() != "r--" || Rights(0).String() != "---" {
		t.Fatalf("rights strings: %v %v %v", RightsRWG, CapRead, Rights(0))
	}
}

func TestCapabilityString(t *testing.T) {
	c := EndpointCap(3, RightsRW, 7)
	if c.String() != "ep#3(rw-,badge=7)" {
		t.Fatalf("String = %q", c.String())
	}
	if (Capability{}).String() != "null" {
		t.Fatal("null cap string")
	}
}
