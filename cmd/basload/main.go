// Command basload is the tenant API tier's deterministic load generator
// (experiment E15): a million simulated occupant/manager/vendor requests in
// virtual time against shard-local gateways, merged into one report whose
// bytes are identical at any worker count.
//
// Usage:
//
//	basload                                   # 1,000,000 requests, 64 shards
//	basload -requests 200000 -shards 16 -json
//	basload -workers 8                        # same bytes, less wall-clock
//	basload -bench 1,2,4,8 -bench-out BENCH_api.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"mkbas/internal/cli"
	"mkbas/internal/perf"
	"mkbas/internal/tenantapi/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "basload:", err)
		os.Exit(1)
	}
}

func run() error {
	requests := flag.Int("requests", 1_000_000, "total simulated requests across all shards")
	shards := flag.Int("shards", 64, "independent gateway shards (the determinism unit)")
	seed := flag.Uint64("seed", 0xE15, "campaign seed: drives principal, route, and value choices")
	var out cli.Output
	var pool cli.Pool
	out.Register(flag.CommandLine)
	pool.Register(flag.CommandLine)
	var prof perf.CLI
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	plan := loadgen.Plan{Seed: *seed, Requests: *requests, Shards: *shards}

	if pool.Bench != "" {
		workerCounts, err := pool.BenchCounts()
		if err != nil {
			return err
		}
		rep, err := loadgen.Bench(plan, workerCounts, runtime.NumCPU())
		if err != nil {
			return err
		}
		return cli.WriteBenchReport(rep, pool.BenchOut, "req/s")
	}

	if err := prof.Start(); err != nil {
		return err
	}
	plan.Workers = pool.Workers
	plan.Profiler = prof.Profiler()
	rep, err := loadgen.Run(plan)
	if err != nil {
		return err
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if out.JSON {
		data, jerr := rep.JSON()
		if jerr != nil {
			return jerr
		}
		_, werr := os.Stdout.Write(data)
		return werr
	}
	printText(rep)
	return nil
}

func printText(rep *loadgen.Report) {
	fmt.Printf("tenant API load campaign: %d requests, %d shards, seed %#x\n",
		rep.Requests, rep.Plan.Shards, rep.Plan.Seed)
	fmt.Printf("  served %d (%.1f%%), backend setpoint writes %d\n",
		rep.Served, 100*float64(rep.Served)/float64(rep.Requests), rep.BackendWrites)
	fmt.Println("outcomes:")
	names := make([]string, 0, len(rep.Outcomes))
	for name := range rep.Outcomes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-14s %9d\n", name, rep.Outcomes[name])
	}
	fmt.Println("latency (virtual, per route):")
	for _, h := range rep.Histograms {
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-24s n=%-9d p50=%6.2fms p95=%6.2fms p99=%6.2fms\n",
			h.Name, h.Count, float64(h.P50Ns)/1e6, float64(h.P95Ns)/1e6, float64(h.P99Ns)/1e6)
	}
	if len(rep.Mechanisms) > 0 {
		fmt.Print("denials mediated by:")
		for _, m := range rep.Mechanisms {
			fmt.Printf(" %s", m)
		}
		fmt.Println()
	}
}
