package polcheck

import (
	"fmt"
	"strings"
)

// StructuralFindings runs policy-hygiene lint over a graph: results are
// warnings and infos, never violations, because structure alone does not
// prove an attack — but each one is a place where the policy grants more (or
// less) than the architecture needs.
//
//   - isolated subject: a subject with no flow edges in or out cannot
//     participate in the system; the grant set and the process set disagree;
//   - wildcard grant: an "mt*" edge authorises all 64 message types where
//     the scenario needs a handful — the over-broad-ACL smell the paper's
//     matrix avoids by enumerating types per pair;
//   - broad sender: a subject that can send into more than half the
//     channels/subjects in the graph concentrates authority the way the
//     Linux root account does.
func StructuralFindings(g *Graph) []Finding {
	var out []Finding

	// Count IPC destinations per subject and find isolated subjects.
	incoming := make(map[Node]bool)
	for _, n := range g.Nodes() {
		for _, e := range g.FlowsFrom(n) {
			incoming[e.To] = true
		}
	}
	var ipcTargets int
	for _, n := range g.Nodes() {
		if n.Kind != KindSubject {
			ipcTargets++
		}
	}
	subjects := g.Subjects()
	if ipcTargets == 0 {
		// Direct subject→subject graphs (MINIX ACM): destinations are the
		// other subjects.
		ipcTargets = len(subjects) - 1
	}

	for _, name := range subjects {
		n := Subject(name)
		flows := g.FlowsFrom(n)
		if len(flows) == 0 && !incoming[n] {
			out = append(out, Finding{
				Property: "isolated_subject",
				Check:    fmt.Sprintf("isolated_subject(%s)", name),
				Severity: SeverityWarning,
				Detail: fmt.Sprintf(
					"%s has no IPC authority in or out; it cannot participate in the system", name),
			})
		}
		for _, e := range flows {
			for _, l := range e.Labels {
				if l == "mt*" {
					out = append(out, Finding{
						Property: "wildcard_grant",
						Check:    fmt.Sprintf("wildcard_grant(%s, %s)", name, e.To.Name),
						Severity: SeverityWarning,
						Detail: fmt.Sprintf(
							"%s may send every message type to %s (%s); enumerate the types the scenario needs",
							name, e.To.Name, e.Origin),
					})
				}
			}
		}
		if targets := g.SendTargets(name); ipcTargets > 1 && len(targets) > ipcTargets/2 {
			names := make([]string, len(targets))
			for i, t := range targets {
				names[i] = t.Name
			}
			out = append(out, Finding{
				Property: "broad_sender",
				Check:    fmt.Sprintf("broad_sender(%s)", name),
				Severity: SeverityInfo,
				Detail: fmt.Sprintf(
					"%s can send to %d of %d IPC destinations: %s",
					name, len(targets), ipcTargets, strings.Join(names, ", ")),
			})
		}
	}
	return out
}
