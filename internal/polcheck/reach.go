package polcheck

import (
	"sort"
	"strings"
)

// ReachMode selects how far reachability flows through the graph.
type ReachMode int

// Reachability modes.
const (
	// ReachDirect follows only conduit nodes (channels, devices): it
	// answers "which subjects can A deliver data to without any other
	// subject's code cooperating". Subjects are reported as reachable but
	// not expanded — a path through another subject requires that subject
	// to actively forward, which is mediation, not authority.
	ReachDirect ReachMode = iota + 1
	// ReachTransitive also expands subject nodes: it computes the full
	// information-flow closure, answering "can data originating at A ever
	// influence B, however many mediators relay it".
	ReachTransitive
)

// String names the mode.
func (m ReachMode) String() string {
	switch m {
	case ReachDirect:
		return "direct"
	case ReachTransitive:
		return "transitive"
	default:
		return "unknown"
	}
}

// Path is one witness route through the graph, alternating nodes and edge
// labels.
type Path struct {
	Nodes []Node
	// Labels[i] justifies the hop Nodes[i] → Nodes[i+1].
	Labels [][]string
}

// String renders "webInterface -[send]-> /heater-cmd -[recv]-> heaterActProc".
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "<empty path>"
	}
	var b strings.Builder
	b.WriteString(p.Nodes[0].Name)
	for i := 1; i < len(p.Nodes); i++ {
		b.WriteString(" -[")
		b.WriteString(strings.Join(p.Labels[i-1], ","))
		b.WriteString("]-> ")
		b.WriteString(p.Nodes[i].Name)
	}
	return b.String()
}

// Steps renders the path as a node-name list for JSON reports.
func (p Path) Steps() []string {
	out := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.Name
	}
	return out
}

// Reach computes the set of subjects reachable from a starting subject under
// the given mode, mapping each reached subject name to one shortest witness
// path. The start subject itself is not reported.
func (g *Graph) Reach(from string, mode ReachMode) map[string]Path {
	start := Subject(from)
	reached := make(map[string]Path)
	if !g.HasNode(start) {
		return reached
	}
	type item struct {
		node Node
		path Path
	}
	visited := map[Node]bool{start: true}
	queue := []item{{node: start, path: Path{Nodes: []Node{start}}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.FlowsFrom(cur.node) {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			next := Path{
				Nodes:  append(append([]Node{}, cur.path.Nodes...), e.To),
				Labels: append(append([][]string{}, cur.path.Labels...), e.Labels),
			}
			if e.To.Kind == KindSubject {
				reached[e.To.Name] = next
				if mode != ReachTransitive {
					continue // report, but do not expand through it
				}
			}
			queue = append(queue, item{node: e.To, path: next})
		}
	}
	return reached
}

// Reachable reports whether to is reachable from from under mode, with a
// witness path when it is.
func (g *Graph) Reachable(from, to string, mode ReachMode) (Path, bool) {
	p, ok := g.Reach(from, mode)[to]
	return p, ok
}

// ReachableSubjects returns the sorted names of subjects reachable from from
// under mode.
func (g *Graph) ReachableSubjects(from string, mode ReachMode) []string {
	m := g.Reach(from, mode)
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
