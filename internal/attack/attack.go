// Package attack implements the paper's Section IV-D attack simulations and
// the harness that reproduces its platform-comparison results (experiment
// E1).
//
// Threat model, exactly as in the paper: the web interface process is
// compromised and executes arbitrary attacker code, with "enough knowledge
// about other control processes" (names, queue names, pid ranges, slot
// numbers). The second attacker model additionally holds root, obtained
// through a simulated privilege-escalation exploit.
//
// Each attack runs on a fresh testbed: the scenario settles for 30 virtual
// minutes, the attack executes for 3 virtual hours, and ground-truth safety
// monitors (internal/safety) decide whether the physical world was
// compromised. The attacker's own success/denial counters are recorded
// separately — a denied operation that caused no physical deviation is the
// microkernel story; an accepted operation with physical deviation is the
// Linux story.
package attack

import (
	"fmt"
	"strings"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/obs"
	"mkbas/internal/safety"
)

// Platform selects the deployment under attack.
type Platform string

// Platforms under comparison. MinixVanilla (ACM disabled) and LinuxHardened
// (unique accounts + restrictive modes) are ablations beyond the paper's
// three headline systems.
const (
	PlatformLinux         Platform = "linux"
	PlatformLinuxHardened Platform = "linux-hardened"
	PlatformMinix         Platform = "minix3-acm"
	PlatformMinixVanilla  Platform = "minix3-vanilla"
	PlatformSel4          Platform = "sel4"
)

// AllPlatforms lists the headline platforms in the paper's order.
func AllPlatforms() []Platform {
	return []Platform{PlatformLinux, PlatformMinix, PlatformSel4}
}

// Action selects the attack.
type Action string

// Attacks from Section IV-D.
const (
	// ActionSpoofSensor impersonates the temperature sensor, feeding the
	// controller an in-range reading while the room drifts.
	ActionSpoofSensor Action = "spoof-sensor"
	// ActionCommandActuators sends heater-off/alarm-off commands directly
	// to the actuator drivers ("arbitrarily control the fan and LED").
	ActionCommandActuators Action = "command-actuators"
	// ActionKillController destroys the temperature control process.
	ActionKillController Action = "kill-controller"
	// ActionEnumerate brute-forces IPC handles: capability slots on seL4,
	// endpoints on MINIX, queue names on Linux.
	ActionEnumerate Action = "enumerate-handles"
	// ActionForkBomb spawns processes until stopped.
	ActionForkBomb Action = "fork-bomb"
)

// AllActions lists every attack.
func AllActions() []Action {
	return []Action{
		ActionSpoofSensor, ActionCommandActuators, ActionKillController,
		ActionEnumerate, ActionForkBomb,
	}
}

// Spec is one attack configuration.
type Spec struct {
	Platform Platform
	Action   Action
	// Root applies the second attacker model (privilege escalation). On
	// seL4 there is no root to escalate to; the flag is accepted and noted.
	Root bool
	// ForkQuota, when > 0 on MINIX, applies the E8 quota policy.
	ForkQuota int
}

// progress is the attacker's self-reported tally, shared between the
// malicious body and the report.
type progress struct {
	attempts  int
	successes int
	denials   int
	notes     []string
}

func (p *progress) note(format string, args ...any) {
	p.notes = append(p.notes, fmt.Sprintf(format, args...))
}

// Report is the outcome of one attack run.
type Report struct {
	Spec Spec
	// OperationSucceeded: at least one malicious operation was accepted by
	// the platform.
	OperationSucceeded bool
	// Attempts/Successes/Denials tally individual malicious operations.
	Attempts  int
	Successes int
	Denials   int
	// ControllerAlive: the temperature control process survived.
	ControllerAlive bool
	// PhysicalCompromise: ground-truth safety monitors recorded violations.
	PhysicalCompromise bool
	// Violations are the recorded safety breaches.
	Violations []safety.Violation
	// Notes carries attacker- and harness-observations.
	Notes []string
	// SecurityEvents are the denial events the platform's mediation layers
	// emitted during the run, in virtual-time order.
	SecurityEvents []obs.SecurityEvent
	// Mechanisms lists the distinct mediation mechanisms that denied at
	// least one operation (sorted; empty when nothing was denied).
	Mechanisms []obs.Mechanism
}

// BlockedBy names the mediation layer(s) that denied attack operations,
// e.g. "acm" or "capability". Empty when no denial event was recorded.
func (r *Report) BlockedBy() string {
	parts := make([]string, len(r.Mechanisms))
	for i, m := range r.Mechanisms {
		parts[i] = string(m)
	}
	return strings.Join(parts, ", ")
}

// Verdict renders the cell for the E1 outcome matrix.
func (r *Report) Verdict() string {
	switch {
	case r.PhysicalCompromise:
		return "COMPROMISED"
	case r.OperationSucceeded:
		return "accepted-no-impact"
	default:
		return "BLOCKED"
	}
}

// Durations of the phases (virtual time).
const (
	settleTime = 30 * time.Minute
	attackTime = 3 * time.Hour
)

// Execute runs one attack end to end on a fresh testbed.
func Execute(spec Spec) (*Report, error) {
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()

	prog := &progress{}
	var controllerAlive func() bool
	var err error
	switch spec.Platform {
	case PlatformMinix, PlatformMinixVanilla:
		controllerAlive, err = deployMinixAttack(tb, cfg, spec, prog)
	case PlatformLinux, PlatformLinuxHardened:
		controllerAlive, err = deployLinuxAttack(tb, cfg, spec, prog)
	case PlatformSel4:
		controllerAlive, err = deploySel4Attack(tb, cfg, spec, prog)
	default:
		return nil, fmt.Errorf("attack: unknown platform %q", spec.Platform)
	}
	if err != nil {
		return nil, err
	}

	monCfg := safety.DefaultConfig()
	monCfg.Setpoint = cfg.Controller.Setpoint
	monCfg.Tolerance = cfg.Controller.AlarmTolerance
	monCfg.AlarmDelay = cfg.Controller.AlarmDelay
	monCfg.SettleTime = settleTime / 2
	mon := safety.Attach(tb.Machine.Clock(), tb.Room, monCfg)

	tb.Machine.Run(settleTime + attackTime)

	eventLog := tb.Machine.Obs().Events()
	var denied []obs.SecurityEvent
	for _, e := range eventLog.Events() {
		if e.Denied {
			denied = append(denied, e)
		}
	}

	report := &Report{
		Spec:               spec,
		OperationSucceeded: prog.successes > 0,
		Attempts:           prog.attempts,
		Successes:          prog.successes,
		Denials:            prog.denials,
		ControllerAlive:    controllerAlive(),
		Violations:         mon.Violations(),
		PhysicalCompromise: len(mon.Violations()) > 0 || !controllerAlive(),
		Notes:              prog.notes,
		SecurityEvents:     denied,
		Mechanisms:         eventLog.Mechanisms(),
	}
	return report, nil
}
