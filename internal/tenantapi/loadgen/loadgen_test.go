package loadgen

import (
	"bytes"
	"testing"

	"mkbas/internal/tenantapi"
)

// smallPlan is big enough to hit every outcome class but fast enough for the
// unit suite.
func smallPlan() Plan {
	return Plan{Seed: 0xE16, Requests: 40_000, Shards: 8}
}

func TestRunCoversOutcomes(t *testing.T) {
	rep, err := Run(smallPlan())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests != 40_000 {
		t.Fatalf("requests = %d, want 40000", rep.Requests)
	}
	var sum int64
	for _, v := range rep.Outcomes {
		sum += v
	}
	if sum != rep.Requests {
		t.Fatalf("outcome tallies sum to %d, want %d", sum, rep.Requests)
	}
	// The mix is tuned so every mediation layer fires: session auth (401),
	// RBAC (403), validation (400), routing (404), rate limiting (429), and
	// admission control (503), alongside served traffic.
	for _, o := range []tenantapi.Outcome{
		tenantapi.OutcomeOK, tenantapi.OutcomeBadRequest, tenantapi.OutcomeUnauthorized,
		tenantapi.OutcomeForbidden, tenantapi.OutcomeNotFound,
		tenantapi.OutcomeRateLimited, tenantapi.OutcomeOverload,
	} {
		if rep.Outcomes[o.String()] == 0 {
			t.Errorf("outcome %s never occurred; tallies: %v", o, rep.Outcomes)
		}
	}
	if rep.Served == 0 || rep.BackendWrites == 0 {
		t.Fatalf("served=%d backend_writes=%d, want both > 0", rep.Served, rep.BackendWrites)
	}
	if len(rep.Histograms) == 0 || len(rep.Counters) == 0 {
		t.Fatalf("merged metrics empty: %d histograms, %d counters", len(rep.Histograms), len(rep.Counters))
	}
	for _, h := range rep.Histograms {
		if h.Count > 0 && (h.P50Ns <= 0 || h.P99Ns < h.P50Ns) {
			t.Errorf("histogram %s has degenerate quantiles p50=%d p99=%d", h.Name, h.P50Ns, h.P99Ns)
		}
	}
	if len(rep.Mechanisms) == 0 {
		t.Fatalf("no denial mechanisms recorded")
	}
}

// TestWorkerCountInvariance is the determinism contract: the merged JSON is
// byte-identical whether the shards run serially or across a pool.
func TestWorkerCountInvariance(t *testing.T) {
	var baseline []byte
	for _, workers := range []int{1, 3, 8} {
		plan := smallPlan()
		plan.Workers = workers
		rep, err := Run(plan)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		if baseline == nil {
			baseline = out
			continue
		}
		if !bytes.Equal(out, baseline) {
			t.Fatalf("workers=%d produced different bytes than workers=1 (%d vs %d bytes)",
				workers, len(out), len(baseline))
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a, err := Run(smallPlan())
	if err != nil {
		t.Fatal(err)
	}
	plan := smallPlan()
	plan.Seed++
	b, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if bytes.Equal(aj, bj) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestBench(t *testing.T) {
	plan := smallPlan()
	plan.Requests = 8_000
	rep, err := Bench(plan, []int{1, 2}, 4)
	if err != nil {
		t.Fatalf("Bench: %v", err)
	}
	if !rep.Identical {
		t.Fatal("bench runs were not byte-identical")
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.RequestsPerSec <= 0 {
			t.Errorf("workers=%d requests_per_sec=%v, want > 0", pt.Workers, pt.RequestsPerSec)
		}
	}
	if rep.Points[0].Workers != 1 || rep.Points[0].Speedup != 1 {
		t.Fatalf("baseline point wrong: %+v", rep.Points[0])
	}
}
