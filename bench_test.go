package mkbas

// One benchmark per experiment in DESIGN.md's index. Where the paper's
// artifact is qualitative (the attack matrix), the benchmark regenerates the
// run and reports the decisive counters as metrics; where the paper makes a
// quantitative claim (microkernel IPC pays more context switches), the
// benchmark measures it.

import (
	"testing"
	"time"

	"mkbas/internal/aadl"
	"mkbas/internal/attack"
	"mkbas/internal/bas"
	"mkbas/internal/core"
	"mkbas/internal/linuxsim"
	"mkbas/internal/machine"
	"mkbas/internal/minix"
	"mkbas/internal/plant"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"

	"os"
	"path/filepath"
)

// --- E1: Section IV-D attack outcomes ---------------------------------------

func benchAttack(b *testing.B, spec attack.Spec, wantCompromise bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := attack.Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		if report.PhysicalCompromise != wantCompromise {
			b.Fatalf("%s on %s: compromise=%v, want %v",
				spec.Action, spec.Platform, report.PhysicalCompromise, wantCompromise)
		}
		b.ReportMetric(float64(report.Denials), "denials/op")
		b.ReportMetric(float64(report.Successes), "accepted/op")
	}
}

func BenchmarkE1_SpoofSensor_Linux(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformLinux, Action: attack.ActionSpoofSensor}, true)
}

func BenchmarkE1_SpoofSensor_Minix(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformMinix, Action: attack.ActionSpoofSensor}, false)
}

func BenchmarkE1_SpoofSensor_Sel4(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformSel4, Action: attack.ActionSpoofSensor}, false)
}

func BenchmarkE1_KillController_Linux_Root(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformLinux, Action: attack.ActionKillController, Root: true}, true)
}

func BenchmarkE1_KillController_Minix_Root(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformMinix, Action: attack.ActionKillController, Root: true}, false)
}

func BenchmarkE1_KillController_Sel4(b *testing.B) {
	benchAttack(b, attack.Spec{Platform: attack.PlatformSel4, Action: attack.ActionKillController}, false)
}

// --- E2: Fig. 3 ACM lookup ----------------------------------------------------

func BenchmarkE2_ACMLookup(b *testing.B) {
	m := core.Fig3Matrix()
	b.ReportAllocs()
	b.ResetTimer()
	allowed := 0
	for i := 0; i < b.N; i++ {
		// The narrated check: App2 sends m_type 2 to App1 (allowed), then
		// m_type 1 (denied).
		if m.Allows(core.Fig3App2, core.Fig3App1, 2) {
			allowed++
		}
		if m.Allows(core.Fig3App2, core.Fig3App1, 1) {
			allowed--
		}
	}
	if allowed != b.N {
		b.Fatalf("Fig. 3 semantics broken: %d", allowed)
	}
}

// --- E3: Fig. 2 closed-loop control ------------------------------------------

func benchClosedLoop(b *testing.B, deploy func(tb *bas.Testbed, cfg bas.ScenarioConfig) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := bas.DefaultScenario()
		tb := bas.NewTestbed(cfg)
		if err := deploy(tb, cfg); err != nil {
			b.Fatal(err)
		}
		tb.Machine.Run(40 * time.Minute)
		temp := tb.Room.Temperature()
		if temp < 21 || temp > 23 {
			b.Fatalf("loop did not converge: %.2f", temp)
		}
		stats := tb.Machine.Engine().Stats()
		b.ReportMetric(float64(stats.Traps), "vtraps/op")
		b.ReportMetric(float64(stats.ContextSwitches), "vctxsw/op")
		tb.Machine.Shutdown()
	}
}

func BenchmarkE3_ControlLoop_Minix(b *testing.B) {
	benchClosedLoop(b, func(tb *bas.Testbed, cfg bas.ScenarioConfig) error {
		_, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{})
		return err
	})
}

func BenchmarkE3_ControlLoop_Sel4(b *testing.B) {
	benchClosedLoop(b, func(tb *bas.Testbed, cfg bas.ScenarioConfig) error {
		_, err := bas.Deploy(bas.PlatformSel4, tb, cfg, bas.DeployOptions{})
		return err
	})
}

func BenchmarkE3_ControlLoop_Linux(b *testing.B) {
	benchClosedLoop(b, func(tb *bas.Testbed, cfg bas.ScenarioConfig) error {
		_, err := bas.Deploy(bas.PlatformLinux, tb, cfg, bas.DeployOptions{})
		return err
	})
}

// --- E4: IPC round-trip cost (microkernel vs monolithic) ----------------------
//
// The paper: "the microkernel approach generally underperforms the
// monolithic due to the multiple context switches". Each benchmark drives
// request/response round trips between two processes and reports the
// simulated context switches and kernel entries per round trip.

// minixRoundTrips builds a MINIX echo pair; the returned counter advances
// once per completed round trip.
func minixRoundTrips(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	policy := core.NewPolicy()
	policy.IPC.Allow(1, 2, 1).AllowBidirectionalAck(1, 2)
	policy.Seal()
	k, err := minix.Boot(m, policy, minix.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rounds := new(int64)
	k.RegisterImage(minix.Image{Name: "server", Priority: 7, Body: func(api *minix.API) {
		for {
			msg, err := api.Receive(minix.EndpointAny)
			if err != nil {
				return
			}
			_ = api.Send(msg.Source, minix.NewMessage(0))
		}
	}})
	k.RegisterImage(minix.Image{Name: "client", Priority: 7, Body: func(api *minix.API) {
		server, _ := api.Lookup("server")
		for {
			if _, err := api.SendRec(server, minix.NewMessage(1)); err != nil {
				return
			}
			*rounds++
		}
	}})
	if _, err := k.SpawnImage("server", 2); err != nil {
		b.Fatal(err)
	}
	if _, err := k.SpawnImage("client", 1); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

// sel4RoundTrips builds an seL4 Call/Reply pair.
func sel4RoundTrips(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	k := sel4.NewKernel(m, sel4.Config{})
	ep := k.CreateEndpoint("rpc")
	rounds := new(int64)
	server := k.CreateThread("server", 7, func(api *sel4.API) {
		for {
			if _, err := api.Recv(1); err != nil {
				return
			}
			if err := api.Reply(sel4.Msg{}); err != nil {
				return
			}
		}
	})
	client := k.CreateThread("client", 7, func(api *sel4.API) {
		for {
			if _, err := api.Call(1, sel4.Msg{Label: 1}); err != nil {
				return
			}
			*rounds++
		}
	})
	if err := k.InstallCap(server, 1, sel4.EndpointCap(ep, sel4.CapRead, 0)); err != nil {
		b.Fatal(err)
	}
	if err := k.InstallCap(client, 1, sel4.EndpointCap(ep, sel4.RightsRWG, 0)); err != nil {
		b.Fatal(err)
	}
	if err := k.Start(server); err != nil {
		b.Fatal(err)
	}
	if err := k.Start(client); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

// linuxRoundTrips builds a POSIX-mq request/response pair.
func linuxRoundTrips(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	k := linuxsim.Boot(m, linuxsim.Config{})
	rounds := new(int64)
	k.RegisterImage(linuxsim.Image{Name: "server", UID: 1, Priority: 7, Body: func(api *linuxsim.API) {
		req, err := api.MQOpen("/req", linuxsim.MQOpenFlags{Create: true, Read: true, Mode: 0o600})
		if err != nil {
			return
		}
		resp, err := api.MQOpen("/resp", linuxsim.MQOpenFlags{Create: true, Write: true, Mode: 0o600})
		if err != nil {
			return
		}
		pong := []byte("pong")
		for {
			if _, err := api.MQReceive(req); err != nil {
				return
			}
			if err := api.MQSend(resp, pong, 0); err != nil {
				return
			}
		}
	}})
	k.RegisterImage(linuxsim.Image{Name: "client", UID: 1, Priority: 7, Body: func(api *linuxsim.API) {
		var req, resp int32
		for {
			var err error
			if req, err = api.MQOpen("/req", linuxsim.MQOpenFlags{Write: true}); err == nil {
				break
			}
			api.Sleep(time.Millisecond)
		}
		for {
			var err error
			if resp, err = api.MQOpen("/resp", linuxsim.MQOpenFlags{Read: true}); err == nil {
				break
			}
			api.Sleep(time.Millisecond)
		}
		ping := []byte("ping")
		for {
			if err := api.MQSend(req, ping, 0); err != nil {
				return
			}
			if _, err := api.MQReceive(resp); err != nil {
				return
			}
			*rounds++
		}
	}})
	if _, err := k.SpawnImage("server"); err != nil {
		b.Fatal(err)
	}
	if _, err := k.SpawnImage("client"); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

func benchRoundTrips(b *testing.B, build func(b testing.TB) (*machine.Machine, *int64)) {
	b.Helper()
	// allocs/op is part of the E4 contract: the monitored variants must
	// report the same figure as the bare ones (the monitor's in-graph path
	// allocates nothing).
	b.ReportAllocs()
	m, rounds := build(b)
	defer m.Shutdown()
	// Warm up: let the pair complete its first round.
	for *rounds == 0 {
		m.Run(time.Second)
	}
	base := m.Engine().Stats()
	start := *rounds
	b.ResetTimer()
	target := start + int64(b.N)
	for *rounds < target {
		// Small virtual slices keep the overshoot past b.N rounds tiny.
		m.Run(50 * time.Microsecond)
	}
	b.StopTimer()
	stats := m.Engine().Stats()
	done := *rounds - start
	b.ReportMetric(float64(stats.Traps-base.Traps)/float64(done), "vtraps/rt")
	b.ReportMetric(float64(stats.ContextSwitches-base.ContextSwitches)/float64(done), "vctxsw/rt")
}

func BenchmarkE4_IPCRoundTrip_MinixSendRec(b *testing.B) {
	benchRoundTrips(b, minixRoundTrips)
}

func BenchmarkE4_IPCRoundTrip_Sel4Call(b *testing.B) {
	benchRoundTrips(b, sel4RoundTrips)
}

func BenchmarkE4_IPCRoundTrip_LinuxMQ(b *testing.B) {
	benchRoundTrips(b, linuxRoundTrips)
}

// Monitored E4 variants: the same round-trip pairs with the online policy
// monitor attached over each pair's certified graph, exactly as a monitored
// deployment attaches it — every kernel-recorded delivery checked against
// the graph on the hot path. Comparing the _Monitored ns/op and allocs/op
// figures against the bare benchmarks above is the E12 overhead gate: the
// in-graph check must stay allocation-free and within a few percent.

// monitoredRoundTrips wraps an E4 builder with a monitor over graph g and
// fails the benchmark if any of the measured traffic drifted (a drifting
// bench would be timing the event-emission slow path, not the hot path).
func monitoredRoundTrips(build func(testing.TB) (*machine.Machine, *int64), g *polcheck.Graph) func(testing.TB) (*machine.Machine, *int64) {
	return func(b testing.TB) (*machine.Machine, *int64) {
		m, rounds := build(b)
		mon := monitor.New(g, monitor.Options{Events: m.Obs().Events()})
		m.IPC().SetObserver(mon.Observe)
		b.Cleanup(func() {
			st := mon.Stats()
			if st.Observed == 0 {
				b.Fatal("monitor observed no deliveries")
			}
			if st.PolicyDrifts != 0 || st.OriginDrifts != 0 {
				b.Fatalf("bench traffic drifted off its own graph: %+v", st)
			}
		})
		return m, rounds
	}
}

func BenchmarkE4_IPCRoundTrip_MinixSendRec_Monitored(b *testing.B) {
	// The echo pair's ACM leaves both ACIDs unnamed, so the kernel records
	// them under the matrix's fallback labels.
	g := polcheck.NewGraph("bench-minix")
	g.AddFlow(polcheck.Subject("acid-1"), polcheck.Subject("acid-2"), []string{"mt0", "mt1"}, "bench")
	g.AddFlow(polcheck.Subject("acid-2"), polcheck.Subject("acid-1"), []string{"mt0"}, "bench")
	benchRoundTrips(b, monitoredRoundTrips(minixRoundTrips, g))
}

func BenchmarkE4_IPCRoundTrip_Sel4Call_Monitored(b *testing.B) {
	g := polcheck.NewGraph("bench-sel4")
	g.AddFlow(polcheck.Subject("client"), polcheck.Channel("rpc"), []string{"send"}, "bench")
	g.AddFlow(polcheck.Channel("rpc"), polcheck.Subject("server"), []string{"recv"}, "bench")
	g.AddFlow(polcheck.Subject("server"), polcheck.Channel("rpc"), []string{"send"}, "bench")
	g.AddFlow(polcheck.Channel("rpc"), polcheck.Subject("client"), []string{"recv"}, "bench")
	benchRoundTrips(b, monitoredRoundTrips(sel4RoundTrips, g))
}

func BenchmarkE4_IPCRoundTrip_LinuxMQ_Monitored(b *testing.B) {
	g := polcheck.NewGraph("bench-linux")
	g.AddFlow(polcheck.Subject("client"), polcheck.Channel("/req"), []string{"send"}, "bench")
	g.AddFlow(polcheck.Channel("/req"), polcheck.Subject("server"), []string{"recv"}, "bench")
	g.AddFlow(polcheck.Subject("server"), polcheck.Channel("/resp"), []string{"send"}, "bench")
	g.AddFlow(polcheck.Channel("/resp"), polcheck.Subject("client"), []string{"recv"}, "bench")
	benchRoundTrips(b, monitoredRoundTrips(linuxRoundTrips, g))
}

// The sharper version of the paper's overhead claim: an OS *service* (here,
// reading the temperature sensor) is one kernel entry on a monolithic
// system, because the driver lives in the kernel; on a microkernel it is a
// full IPC round trip through a user-space driver process — several kernel
// entries and at least two context switches.

// minixDeviceService: client obtains readings through the driver process.
func minixDeviceService(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	plantAttach(m)
	policy := core.NewPolicy()
	policy.IPC.Allow(1, 2, 1).AllowBidirectionalAck(1, 2)
	policy.Seal()
	k, err := minix.Boot(m, policy, minix.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rounds := new(int64)
	k.RegisterImage(minix.Image{
		Name: "driver", Priority: 7, Devices: []machine.DeviceID{plant.DevTempSensor},
		Body: func(api *minix.API) {
			for {
				msg, err := api.Receive(minix.EndpointAny)
				if err != nil {
					return
				}
				raw, _ := api.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
				reply := minix.NewMessage(0)
				reply.PutU32(0, raw)
				_ = api.Send(msg.Source, reply)
			}
		},
	})
	k.RegisterImage(minix.Image{Name: "app", Priority: 7, Body: func(api *minix.API) {
		driver, _ := api.Lookup("driver")
		for {
			if _, err := api.SendRec(driver, minix.NewMessage(1)); err != nil {
				return
			}
			*rounds++
		}
	}})
	if _, err := k.SpawnImage("driver", 2); err != nil {
		b.Fatal(err)
	}
	if _, err := k.SpawnImage("app", 1); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

// sel4DeviceService: client Calls the driver thread holding the device cap.
func sel4DeviceService(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	plantAttach(m)
	k := sel4.NewKernel(m, sel4.Config{})
	ep := k.CreateEndpoint("drv")
	dev := k.CreateDevice(plant.DevTempSensor)
	rounds := new(int64)
	driver := k.CreateThread("driver", 7, func(api *sel4.API) {
		for {
			if _, err := api.Recv(1); err != nil {
				return
			}
			raw, _ := api.DevRead(2, plant.RegTempMilliC)
			reply := sel4.Msg{}
			reply.Words[0] = uint64(raw)
			if err := api.Reply(reply); err != nil {
				return
			}
		}
	})
	app := k.CreateThread("app", 7, func(api *sel4.API) {
		for {
			if _, err := api.Call(1, sel4.Msg{Label: 1}); err != nil {
				return
			}
			*rounds++
		}
	})
	mustInstallCap(b, k, driver, 1, sel4.EndpointCap(ep, sel4.CapRead, 0))
	mustInstallCap(b, k, driver, 2, sel4.DeviceCap(dev, sel4.CapRead))
	mustInstallCap(b, k, app, 1, sel4.EndpointCap(ep, sel4.RightsRWG, 0))
	if err := k.Start(driver); err != nil {
		b.Fatal(err)
	}
	if err := k.Start(app); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

// linuxDeviceService: the "driver" is in the kernel — one syscall per read.
func linuxDeviceService(b testing.TB) (*machine.Machine, *int64) {
	b.Helper()
	m := machine.New(machine.Config{})
	plantAttach(m)
	k := linuxsim.Boot(m, linuxsim.Config{})
	k.RegisterDeviceFile(plant.DevTempSensor, 1, 1, 0o600)
	rounds := new(int64)
	k.RegisterImage(linuxsim.Image{Name: "app", UID: 1, GID: 1, Priority: 7, Body: func(api *linuxsim.API) {
		for {
			if _, err := api.DevRead(plant.DevTempSensor, plant.RegTempMilliC); err != nil {
				return
			}
			*rounds++
		}
	}})
	if _, err := k.SpawnImage("app"); err != nil {
		b.Fatal(err)
	}
	return m, rounds
}

func BenchmarkE4_DeviceService_Minix(b *testing.B) {
	benchRoundTrips(b, minixDeviceService)
}

func BenchmarkE4_DeviceService_Sel4(b *testing.B) {
	benchRoundTrips(b, sel4DeviceService)
}

func BenchmarkE4_DeviceService_Linux(b *testing.B) {
	benchRoundTrips(b, linuxDeviceService)
}

// plantAttach wires a default room onto a bare machine for driver benches.
func plantAttach(m *machine.Machine) {
	plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), plant.DefaultConfig()))
}

func mustInstallCap(b testing.TB, k *sel4.Kernel, tcb sel4.ObjID, slot sel4.CPtr, c sel4.Capability) {
	b.Helper()
	if err := k.InstallCap(tcb, slot, c); err != nil {
		b.Fatal(err)
	}
}

// --- E5: seL4 capability brute force ------------------------------------------

func BenchmarkE5_BruteForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := attack.Execute(attack.Spec{Platform: attack.PlatformSel4, Action: attack.ActionEnumerate})
		if err != nil {
			b.Fatal(err)
		}
		if report.Successes != 2 {
			b.Fatalf("brute force found %d usable slots, want 2", report.Successes)
		}
		b.ReportMetric(float64(report.Denials), "invalid-caps/op")
	}
}

// --- E6: AADL -> ACM compilation -----------------------------------------------

func BenchmarkE6_AADLCompile(b *testing.B) {
	src, err := os.ReadFile(filepath.Join("internal", "aadl", "testdata", "tempcontrol.aadl"))
	if err != nil {
		b.Fatal(err)
	}
	text := string(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkg, err := aadl.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := aadl.GenerateACM(pkg, "temp_control.impl"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: fork quota vs fork bomb ------------------------------------------------

func BenchmarkE8_ForkQuota(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := attack.Execute(attack.Spec{
			Platform: attack.PlatformMinix, Action: attack.ActionForkBomb, ForkQuota: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.Successes != 5 {
			b.Fatalf("quota allowed %d forks, want 5", report.Successes)
		}
		b.ReportMetric(float64(report.Denials), "denied-forks/op")
	}
}

// --- E7 support: HTTP request service through the full stack --------------------

func BenchmarkE7_WebStatusRequest(b *testing.B) {
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{}); err != nil {
		b.Fatal(err)
	}
	tb.Machine.Run(5 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, _, err := tb.HTTPGet("/status")
		if err != nil || status != 200 {
			b.Fatalf("status = %d, err = %v", status, err)
		}
	}
}

var _ = vnet.Port(0) // keep the import set stable across edits
