package lab

import (
	"encoding/json"
	"fmt"
	"os"
)

// GuardResult is the verdict of comparing one fresh bench record against its
// checked-in baseline on the board_steps_per_sec axis.
type GuardResult struct {
	Name string `json:"name"`
	// BaselineBest and FreshBest are each record's best (max over worker
	// counts) board_steps_per_sec — best-of is compared rather than any
	// single worker count so pool-width scheduling noise cancels out.
	BaselineBest float64 `json:"baseline_best"`
	FreshBest    float64 `json:"fresh_best"`
	// Ratio is fresh/baseline; 1.0 means parity, below 1-tolerance fails.
	Ratio float64 `json:"ratio"`
	// Unit names the throughput axis compared: "board-steps/s" for board
	// benches, "req/s" for request-oriented records (BENCH_api.json).
	Unit string `json:"unit"`
	OK   bool   `json:"ok"`
	// Reason explains a failure (or a pass-with-note, e.g. an unusable
	// baseline).
	Reason string `json:"reason,omitempty"`
}

// bestSteps is the max board_steps_per_sec over a record's points. Records
// from request-oriented benches (BENCH_api.json) carry no board-steps axis;
// for those the guard compares requests_per_sec instead — same best-of-
// points discipline, different unit.
func bestSteps(r *BenchReport) (float64, string) {
	best, bestReq := 0.0, 0.0
	for _, p := range r.Points {
		if p.BoardStepsPerSec > best {
			best = p.BoardStepsPerSec
		}
		if p.RequestsPerSec > bestReq {
			bestReq = p.RequestsPerSec
		}
	}
	if best == 0 {
		return bestReq, "req/s"
	}
	return best, "board-steps/s"
}

// CompareBench guards one bench record against its baseline. tolerance is
// the fraction of baseline throughput the fresh record may lose before the
// guard fails: 0.5 fails only below half the recorded rate. Host benchmarks
// on shared CI boxes are noisy, so tolerances here should be generous —
// the guard exists to catch order-of-magnitude regressions (an accidental
// O(n²), a lock on the hot path), not percent-level drift.
//
// A fresh record with Identical == false always fails: the determinism
// contract is part of what the bench measures, and no throughput excuses
// breaking it.
func CompareBench(name string, baseline, fresh *BenchReport, tolerance float64) GuardResult {
	res := GuardResult{Name: name, OK: true}
	if fresh == nil {
		return GuardResult{Name: name, OK: false, Reason: "fresh record missing"}
	}
	res.FreshBest, res.Unit = bestSteps(fresh)
	if !fresh.Identical {
		res.OK = false
		res.Reason = "fresh record reports identical=false (determinism violated)"
		return res
	}
	if baseline == nil {
		res.Reason = "no baseline recorded; pass by default"
		return res
	}
	res.BaselineBest, _ = bestSteps(baseline)
	if res.BaselineBest <= 0 {
		res.Reason = "baseline has no usable throughput axis; pass by default"
		return res
	}
	res.Ratio = res.FreshBest / res.BaselineBest
	if res.Ratio < 1-tolerance {
		res.OK = false
		res.Reason = fmt.Sprintf("throughput regressed: %.1f vs baseline %.1f %s (ratio %.2f < %.2f)",
			res.FreshBest, res.BaselineBest, res.Unit, res.Ratio, 1-tolerance)
	}
	return res
}

// LoadBench reads a bench record JSON from disk.
func LoadBench(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
