package minix

import (
	"fmt"

	"mkbas/internal/core"
)

// RSName is the reincarnation server's published name.
const RSName = "rs"

// maxRestartsPerImage caps crash-loop respawns of one driver image.
const maxRestartsPerImage = 10

// rsServer is the reincarnation server: MINIX 3's self-repair component
// ("a highly reliable, self-repairing operating system"). The kernel reports
// the crash of any Restart-flagged process; RS respawns the same image with
// the same access-control identity, so the ACM policy keeps applying to the
// reborn driver.
type rsServer struct {
	k  *Kernel
	ep Endpoint

	restarts map[string]int
	total    int64
}

func newRSServer(k *Kernel) *rsServer {
	return &rsServer{k: k, restarts: make(map[string]int)}
}

// rsImage is the RS boot image.
func rsImage(rs *rsServer) Image {
	return Image{
		Name:     RSName,
		Body:     rs.run,
		Priority: 1,
		Server:   true,
	}
}

// run is the RS main loop: wait for kernel exit reports, respawn drivers.
func (rs *rsServer) run(api *API) {
	rs.ep = api.Self()
	for {
		msg, err := api.Receive(EndpointAny)
		if err != nil || msg.Type != TypeProcExit {
			continue
		}
		image := msg.GetString(8)
		acid := core.ACID(msg.U32(44))
		if rs.restarts[image] >= maxRestartsPerImage {
			api.Trace("minix-rs", fmt.Sprintf("giving up on %s after %d restarts", image, rs.restarts[image]))
			continue
		}
		ep, err := api.kSpawn(image, acid)
		if err != nil {
			api.Trace("minix-rs", fmt.Sprintf("restart of %s failed: %v", image, err))
			continue
		}
		rs.restarts[image]++
		rs.total++
		api.Trace("minix-rs", fmt.Sprintf("restarted %s as %v (restart #%d)", image, ep, rs.restarts[image]))
	}
}

// RSView exposes RS state to experiments.
type RSView struct {
	rs *rsServer
}

// RS returns the reincarnation-server view.
func (k *Kernel) RS() *RSView { return &RSView{rs: k.rs} }

// Restarts reports how many times an image has been reincarnated.
func (v *RSView) Restarts(image string) int { return v.rs.restarts[image] }

// TotalRestarts reports all reincarnations on this boot.
func (v *RSView) TotalRestarts() int64 { return v.rs.total }
