package bas

import (
	"fmt"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/core"
	"mkbas/internal/minix"
	"mkbas/internal/vnet"
)

// BACnetPort is the gateway's network port (BACnet/IP's 47808).
const BACnetPort vnet.Port = 47808

// NameBACnetGateway is the gateway process image name.
const NameBACnetGateway = "bacnetGateway"

// BACnetOptions enables the field-bus gateway on a MINIX deployment: the
// Fig. 1 integration story, where the controller also speaks the building's
// legacy protocol.
type BACnetOptions struct {
	// Enabled adds the gateway process.
	Enabled bool
	// Key, when non-empty, interposes the secure proxy (HMAC + anti-replay)
	// in front of the legacy protocol. Empty models the unprotected legacy
	// deployment the paper's introduction criticises.
	Key []byte
	// DeviceID is the BACnet device identifier; zero means 1.
	DeviceID uint32
}

// DeployMinixWithBACnet is DeployMinix plus the BACnet gateway. The gateway
// runs as its own process under ACIDBACnetGateway: the kernel's ACM gives it
// exactly the web interface's authority, so field-bus requests — forged or
// not — can never reach the actuator drivers.
func DeployMinixWithBACnet(tb *Testbed, cfg ScenarioConfig, opts MinixOptions, bopts BACnetOptions) (*MinixDeployment, error) {
	if opts.Policy == nil {
		opts.Policy = core.ScenarioPolicyWithGateway()
	}
	dep, err := DeployMinix(tb, cfg, opts)
	if err != nil {
		return nil, err
	}
	if !bopts.Enabled {
		return dep, nil
	}
	deviceID := bopts.DeviceID
	if deviceID == 0 {
		deviceID = 1
	}
	dep.Kernel.RegisterImage(minix.Image{
		Name: NameBACnetGateway, Priority: 7, Net: true,
		Body: bacnetGatewayBody(deviceID, bopts.Key),
	})
	if _, err := dep.Kernel.SpawnImage(NameBACnetGateway, core.ACIDBACnetGateway); err != nil {
		return nil, fmt.Errorf("bas: spawning bacnet gateway: %w", err)
	}
	return dep, nil
}

// controlStore adapts the controller RPC protocol to a BACnet property
// store. Temperature, heater, and alarm are read-only points; the setpoint
// is writable (and the controller still clamps it).
type controlStore struct {
	client *minixControlClient
}

var _ bacnet.PropertyStore = (*controlStore)(nil)

func (s *controlStore) ReadProperty(obj bacnet.ObjectID) (float64, uint8) {
	st, err := s.client.Status()
	if err != nil {
		return 0, bacnet.CodeBadRequest
	}
	switch obj {
	case bacnet.ObjTemperature:
		return st.Temp, 0
	case bacnet.ObjSetpoint:
		return st.Setpoint, 0
	case bacnet.ObjHeater:
		return boolPoint(st.HeaterOn), 0
	case bacnet.ObjAlarm:
		return boolPoint(st.AlarmOn), 0
	default:
		return 0, bacnet.CodeUnknownObject
	}
}

func (s *controlStore) WriteProperty(obj bacnet.ObjectID, value float64) uint8 {
	switch obj {
	case bacnet.ObjSetpoint:
		if err := s.client.SetSetpoint(value); err != nil {
			return bacnet.CodeWriteDenied
		}
		return 0
	case bacnet.ObjTemperature, bacnet.ObjHeater, bacnet.ObjAlarm:
		// The gateway's IPC authority has no path to the drivers; the
		// points are structurally read-only on this platform.
		return bacnet.CodeWriteDenied
	default:
		return bacnet.CodeUnknownObject
	}
}

func boolPoint(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// bacnetGatewayBody serves the (optionally proxied) protocol on BACnetPort.
func bacnetGatewayBody(deviceID uint32, key []byte) func(api *minix.API) {
	return func(api *minix.API) {
		ctrl, ok := minixLookupWait(api, NameTempControl)
		if !ok {
			return
		}
		store := &controlStore{client: &minixControlClient{api: api, ctrl: ctrl}}
		server := bacnet.NewServer(deviceID, store)
		var proxy *bacnet.Proxy
		if len(key) > 0 {
			proxy = bacnet.NewProxy(key, server)
		}
		l, err := api.NetListen(BACnetPort)
		if err != nil {
			api.Trace("bacnet", fmt.Sprintf("listen failed: %v", err))
			return
		}
		for {
			conn, err := api.NetAccept(l)
			if err != nil {
				return
			}
			serveBACnetConn(api, conn, server, proxy)
		}
	}
}

// serveBACnetConn handles one connection until EOF. Legacy mode answers
// every frame; proxy mode silently drops unauthenticated or stale frames.
func serveBACnetConn(api *minix.API, conn int32, server *bacnet.Server, proxy *bacnet.Proxy) {
	defer api.NetClose(conn)
	var d bacnet.Deframer
	for {
		for {
			frame := d.Next()
			if frame == nil {
				break
			}
			var resp []byte
			if proxy != nil {
				secured, err := proxy.HandleFrame(frame)
				if err != nil {
					api.Trace("bacnet", "dropped frame: "+err.Error())
					continue
				}
				resp = secured
			} else {
				resp = server.HandleFrame(frame)
			}
			if err := api.NetWrite(conn, bacnet.Frame(resp)); err != nil {
				return
			}
		}
		data, err := api.NetRead(conn, 0)
		if err != nil {
			return
		}
		d.Feed(data)
	}
}

// BACnetExchange sends one raw (legacy) frame from the host side and runs
// the board until the response arrives; nil response means the gateway
// dropped the frame (proxy mode) or never answered.
func (tb *Testbed) BACnetExchange(raw []byte) []byte {
	conn, err := tb.Net.Dial(BACnetPort)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if err := conn.Write(bacnet.Frame(raw)); err != nil {
		return nil
	}
	var d bacnet.Deframer
	for i := 0; i < 40; i++ {
		tb.Machine.Run(50 * time.Millisecond)
		d.Feed(conn.ReadAll())
		if frame := d.Next(); frame != nil {
			return frame
		}
	}
	return nil
}
