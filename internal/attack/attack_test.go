package attack

import (
	"strings"
	"testing"

	"mkbas/internal/obs"
)

// These tests pin the shape of the paper's Section IV-D results: every cell
// asserted here is a claim the paper makes (or an ablation that sharpens
// one).

func mustExecute(t *testing.T, spec Spec) *Report {
	t.Helper()
	report, err := Execute(spec)
	if err != nil {
		t.Fatalf("Execute(%+v): %v", spec, err)
	}
	t.Logf("\n%s", Summarize(report))
	return report
}

// assertDeniedBy checks that the platform's security-event stream named the
// expected mediation mechanism for a blocked attack.
func assertDeniedBy(t *testing.T, r *Report, mech obs.Mechanism) {
	t.Helper()
	if len(r.SecurityEvents) == 0 {
		t.Fatalf("%s/%s blocked but emitted no security events", r.Spec.Platform, r.Spec.Action)
	}
	for _, m := range r.Mechanisms {
		if m == mech {
			return
		}
	}
	t.Fatalf("%s/%s: mechanisms %v do not include %q", r.Spec.Platform, r.Spec.Action, r.Mechanisms, mech)
}

// --- Linux: the attacks succeed -------------------------------------------

func TestLinuxSpoofCompromisesPhysicalWorld(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionSpoofSensor})
	if !r.OperationSucceeded {
		t.Fatal("spoof operations were denied on Linux")
	}
	if !r.PhysicalCompromise {
		t.Fatal("no physical impact: spoof should have let the room drift")
	}
	if !r.ControllerAlive {
		t.Fatal("controller died; spoof should leave it running but deceived")
	}
}

func TestLinuxCommandActuatorsCompromises(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionCommandActuators})
	if !r.OperationSucceeded || !r.PhysicalCompromise {
		t.Fatalf("actuator takeover should succeed on Linux: %s", r.Verdict())
	}
}

func TestLinuxKillControllerSucceedsEvenWithoutRoot(t *testing.T) {
	// All five processes share one account, so kill(2) needs no root — a
	// sharper statement than the paper's root-based kill.
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionKillController})
	if r.ControllerAlive {
		t.Fatal("controller survived same-uid kill")
	}
	if !r.PhysicalCompromise {
		t.Fatal("dead controller must count as physical compromise")
	}
}

func TestLinuxRootKillCompromises(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionKillController, Root: true})
	if r.ControllerAlive || !r.PhysicalCompromise {
		t.Fatalf("root kill must succeed: %s", r.Verdict())
	}
}

func TestLinuxEnumerateFindsAllQueues(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionEnumerate})
	if r.Successes != 4 {
		t.Fatalf("unauthorized opens = %d, want all 4 shared-account queues", r.Successes)
	}
}

// --- Hardened Linux: DAC blunts the user attack, root defeats DAC ---------

func TestHardenedLinuxBlocksUserSpoof(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinuxHardened, Action: ActionSpoofSensor})
	if r.OperationSucceeded {
		t.Fatal("hardened DAC accepted a spoof without root")
	}
	if r.PhysicalCompromise {
		t.Fatalf("physical compromise despite denied operations: %v", r.Violations)
	}
	assertDeniedBy(t, r, obs.MechDAC)
}

func TestHardenedLinuxRootSpoofCompromises(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinuxHardened, Action: ActionSpoofSensor, Root: true})
	if !r.OperationSucceeded {
		t.Fatal("root spoof denied; root must bypass DAC")
	}
	if !r.PhysicalCompromise {
		t.Fatal("root spoof should compromise the physical world")
	}
}

func TestHardenedLinuxBlocksUserKillButNotRootKill(t *testing.T) {
	user := mustExecute(t, Spec{Platform: PlatformLinuxHardened, Action: ActionKillController})
	if !user.ControllerAlive {
		t.Fatal("controller died to a non-root cross-uid kill")
	}
	root := mustExecute(t, Spec{Platform: PlatformLinuxHardened, Action: ActionKillController, Root: true})
	if root.ControllerAlive {
		t.Fatal("controller survived root kill")
	}
}

// --- Security-enhanced MINIX 3: everything is blocked ----------------------

func TestMinixBlocksSpoofBothModels(t *testing.T) {
	for _, root := range []bool{false, true} {
		r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionSpoofSensor, Root: root})
		if r.OperationSucceeded {
			t.Fatalf("root=%v: ACM accepted a spoofed sensor message", root)
		}
		if r.PhysicalCompromise {
			t.Fatalf("root=%v: physical compromise on MINIX: %v", root, r.Violations)
		}
		if r.Denials == 0 {
			t.Fatalf("root=%v: no denials recorded; attack never ran?", root)
		}
		assertDeniedBy(t, r, obs.MechACM)
	}
}

func TestMinixBlocksActuatorCommands(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionCommandActuators, Root: true})
	if r.OperationSucceeded || r.PhysicalCompromise {
		t.Fatalf("actuator takeover on MINIX: %s", r.Verdict())
	}
}

func TestMinixBlocksKillBothModels(t *testing.T) {
	for _, root := range []bool{false, true} {
		r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionKillController, Root: root})
		if !r.ControllerAlive {
			t.Fatalf("root=%v: controller killed on MINIX", root)
		}
		if r.OperationSucceeded {
			t.Fatalf("root=%v: PM granted a kill to the web interface", root)
		}
		assertDeniedBy(t, r, obs.MechSyscallMask)
	}
}

func TestMinixEndpointScanReachesOnlySystemServers(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionEnumerate})
	// In MINIX any process may message PM and RS — that IS the syscall
	// interface — so the scan's only accepted sends are the two system
	// servers, which audit and refuse the requests. No application process
	// accepts anything.
	if r.Successes > 2 {
		t.Fatalf("endpoint scan accepted %d sends, want at most the 2 system servers", r.Successes)
	}
	if r.PhysicalCompromise {
		t.Fatal("scan compromised the plant")
	}
	if !r.ControllerAlive {
		t.Fatal("controller died during scan")
	}
}

func TestMinixVanillaAblationSpoofSucceeds(t *testing.T) {
	// Ablation: with the ACM disabled, the naive controller believes the
	// spoofed data — the mandatory check is the load-bearing element.
	r := mustExecute(t, Spec{Platform: PlatformMinixVanilla, Action: ActionSpoofSensor})
	if !r.OperationSucceeded {
		t.Fatal("vanilla MINIX denied the spoof; ACM should be the only defence")
	}
	if !r.PhysicalCompromise {
		t.Fatal("vanilla MINIX spoof had no physical impact")
	}
}

func TestMinixForkBombUnboundedWithoutQuota(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionForkBomb})
	if r.Successes < 50 {
		t.Fatalf("fork bomb created only %d processes; expected a runaway", r.Successes)
	}
	// The bomb wastes resources but, thanks to priority scheduling and the
	// ACM, must not touch the physical process.
	if r.PhysicalCompromise {
		t.Fatalf("fork bomb compromised the plant: %v", r.Violations)
	}
}

func TestMinixForkQuotaStopsBomb(t *testing.T) {
	// E8: the paper's proposed future-work mitigation, implemented.
	r := mustExecute(t, Spec{Platform: PlatformMinix, Action: ActionForkBomb, ForkQuota: 5})
	if r.Successes != 5 {
		t.Fatalf("quota of 5 allowed %d forks", r.Successes)
	}
	if r.PhysicalCompromise {
		t.Fatal("bounded bomb compromised the plant")
	}
}

// --- seL4/CAmkES: capabilities confine everything ---------------------------

func TestSel4BlocksSpoof(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformSel4, Action: ActionSpoofSensor})
	if r.PhysicalCompromise {
		t.Fatalf("spoof compromised the plant on seL4: %v", r.Violations)
	}
	if !r.ControllerAlive {
		t.Fatal("controller threads died")
	}
}

func TestSel4BlocksActuatorCommands(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformSel4, Action: ActionCommandActuators})
	if r.PhysicalCompromise {
		t.Fatalf("actuator takeover on seL4: %v", r.Violations)
	}
}

func TestSel4BlocksKill(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformSel4, Action: ActionKillController, Root: true})
	if !r.ControllerAlive {
		t.Fatal("controller suspended without a TCB capability")
	}
	if r.Successes != 0 {
		t.Fatalf("%d suspend invocations accepted, want 0", r.Successes)
	}
	assertDeniedBy(t, r, obs.MechCapability)
}

func TestSel4BruteForceFindsOnlyGrantedSlots(t *testing.T) {
	// "This brute-force program was unsuccessful in finding any additional
	// capabilities": exactly the mgmt endpoint and the network port answer.
	r := mustExecute(t, Spec{Platform: PlatformSel4, Action: ActionEnumerate})
	if r.Successes != 2 {
		t.Fatalf("usable slots = %d, want exactly 2 (mgmt endpoint + net port)", r.Successes)
	}
	if r.PhysicalCompromise {
		t.Fatal("brute force compromised the plant")
	}
}

func TestSel4ForkBombImpossible(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformSel4, Action: ActionForkBomb})
	if r.Successes != 0 {
		t.Fatal("a CAmkES component created processes?")
	}
}

// --- The matrix -------------------------------------------------------------

func TestMatrixHeadlineShape(t *testing.T) {
	// One row of the paper's headline comparison, both attacker models on
	// the kill attack: Linux falls, both microkernels stand.
	reports, err := RunMatrix(AllPlatforms(), []Action{ActionKillController}, true)
	if err != nil {
		t.Fatal(err)
	}
	table := FormatMatrix(reports)
	t.Logf("\n%s", table)
	byPlatform := make(map[Platform]*Report)
	for _, r := range reports {
		byPlatform[r.Spec.Platform] = r
	}
	if byPlatform[PlatformLinux].ControllerAlive {
		t.Error("linux controller survived")
	}
	if !byPlatform[PlatformMinix].ControllerAlive {
		t.Error("minix controller died")
	}
	if !byPlatform[PlatformSel4].ControllerAlive {
		t.Error("sel4 controller died")
	}
	if !strings.Contains(table, "COMPROMISED") || !strings.Contains(table, "BLOCKED") {
		t.Errorf("table missing verdicts:\n%s", table)
	}
}

func TestExecuteRejectsUnknownPlatform(t *testing.T) {
	if _, err := Execute(Spec{Platform: "plan9", Action: ActionSpoofSensor}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
