package attack

import (
	"errors"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/core"
	"mkbas/internal/minix"
)

// minixAttackBody builds the compromised web interface for one action.
func minixAttackBody(action Action, prog *progress) func(api *minix.API) {
	return func(api *minix.API) {
		api.Sleep(settleTime)
		api.Trace("attack", "web interface compromised, starting "+string(action))
		switch action {
		case ActionSpoofSensor:
			minixSpoofSensor(api, prog)
		case ActionCommandActuators:
			minixCommandActuators(api, prog)
		case ActionKillController:
			minixKillController(api, prog)
		case ActionEnumerate:
			minixEnumerate(api, prog)
		case ActionForkBomb:
			minixForkBomb(api, prog)
		}
		for {
			api.Sleep(time.Hour)
		}
	}
}

// tally books one operation outcome.
func (p *progress) tally(err error) {
	p.attempts++
	if err == nil {
		p.successes++
	} else {
		p.denials++
	}
}

// minixSpoofSensor impersonates the sensor: a constant 23 °C reading keeps
// the heater off (above the dead band) while staying inside the alarm
// tolerance, so a believing controller lets the room drift cold without
// alarming — the paper's "fake sensor data ... LED showed everything is
// normal".
func minixSpoofSensor(api *minix.API, prog *progress) {
	ctrl, err := api.Lookup(bas.NameTempControl)
	if err != nil {
		prog.note("controller lookup failed: %v", err)
		return
	}
	end := api.Now().Add(attackTime)
	for i := 0; api.Now() < end; i++ {
		msg := minix.NewMessage(int32(core.MsgSensorData))
		msg.PutF64(0, 23.0)
		sendErr := api.SendNB(ctrl, msg)
		if errors.Is(sendErr, minix.ErrMailboxFull) {
			// Queue pressure, not policy: don't count as a denial.
			api.Sleep(200 * time.Millisecond)
			continue
		}
		prog.tally(sendErr)
		if i == 0 && sendErr != nil {
			prog.note("first spoof denied: %v", sendErr)
		}
		api.Sleep(200 * time.Millisecond)
	}
}

// minixCommandActuators drives the heater and alarm drivers directly.
func minixCommandActuators(api *minix.API, prog *progress) {
	heater, errH := api.Lookup(bas.NameHeaterAct)
	alarm, errA := api.Lookup(bas.NameAlarmAct)
	if errH != nil || errA != nil {
		prog.note("driver lookup failed: %v / %v", errH, errA)
		return
	}
	end := api.Now().Add(attackTime)
	for i := 0; api.Now() < end; i++ {
		off := minix.NewMessage(int32(core.MsgHeaterCmd)) // heater off
		_, sendErr := api.SendRec(heater, off)
		prog.tally(sendErr)
		silence := minix.NewMessage(int32(core.MsgAlarmCmd)) // alarm off
		_, sendErr = api.SendRec(alarm, silence)
		prog.tally(sendErr)
		if i == 0 && sendErr != nil {
			prog.note("first actuator command denied: %v", sendErr)
		}
		api.Sleep(200 * time.Millisecond)
	}
}

// minixKillController asks PM to kill the control process, as the paper's
// root attacker does; PM's ACM audit denies it regardless of uid.
func minixKillController(api *minix.API, prog *progress) {
	end := api.Now().Add(attackTime)
	for i := 0; api.Now() < end; i++ {
		ctrl, err := api.Lookup(bas.NameTempControl)
		if err != nil {
			prog.note("controller gone at attempt %d", i)
			return
		}
		killErr := api.Kill(ctrl)
		prog.tally(killErr)
		if i == 0 {
			prog.note("kill via PM: %v", killErr)
		}
		api.Sleep(time.Second)
	}
}

// minixEnumerate scans the endpoint space, attempting to command whatever
// answers (the MINIX analogue of the seL4 capability brute force).
func minixEnumerate(api *minix.API, prog *progress) {
	for slot := 0; slot < 64; slot++ {
		for gen := 1; gen <= 4; gen++ {
			target := minix.EndpointAt(slot, gen)
			if target == api.Self() {
				continue
			}
			msg := minix.NewMessage(int32(core.MsgHeaterCmd))
			sendErr := api.SendNB(target, msg)
			prog.tally(sendErr)
		}
	}
	prog.note("endpoint scan complete: %d/%d accepted", prog.successes, prog.attempts)
}

// minixForkBomb spawns copies of itself until denied ("because web interface
// process has the privilege to fork children processes, it can potentially
// launch a fork bomb").
func minixForkBomb(api *minix.API, prog *progress) {
	for i := 0; i < 100; i++ {
		_, forkErr := api.Fork2(bas.NameWebInterface, 0)
		prog.tally(forkErr)
		if forkErr != nil && errors.Is(forkErr, minix.ErrPMQuota) && prog.notes == nil {
			prog.note("fork quota exhausted after %d forks", prog.successes)
		}
		api.Sleep(10 * time.Second)
	}
}
