package bas

import (
	"fmt"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/camkes"
	"mkbas/internal/core"
	"mkbas/internal/linuxsim"
	"mkbas/internal/minix"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// BACnetPort is the gateway's network port (BACnet/IP's 47808).
const BACnetPort vnet.Port = 47808

// NameBACnetGateway is the gateway process image name.
const NameBACnetGateway = "bacnetGateway"

// BACnetOptions enables the field-bus gateway on a deployment: the Fig. 1
// integration story, where the controller also speaks the building's legacy
// protocol. Every platform backend consults it, so a building can mix
// platforms room by room behind one protocol.
type BACnetOptions struct {
	// Enabled adds the gateway process.
	Enabled bool
	// Key, when non-empty, interposes the secure proxy (HMAC + anti-replay)
	// in front of the legacy protocol. Empty models the unprotected legacy
	// deployment the paper's introduction criticises.
	Key []byte
	// DeviceID is the BACnet device identifier; zero means 1.
	DeviceID uint32
	// SupervisionWindow, when positive, arms the room's supervisory-traffic
	// watchdog: if no verified supervisory frame reaches the gateway for
	// this long, the controller falls back to the last-committed setpoint
	// (degraded-mode autonomy). Zero — the default for standalone boards —
	// deploys no watchdog and costs nothing.
	SupervisionWindow time.Duration
}

// DeployMinixWithBACnet is DeployMinix plus the BACnet gateway. The gateway
// runs as its own process under ACIDBACnetGateway: the kernel's ACM gives it
// exactly the web interface's authority, so field-bus requests — forged or
// not — can never reach the actuator drivers. Kept as a thin wrapper over
// the Deploy registry now that every backend understands BACnetOptions.
//
// Deprecated: use Deploy(PlatformMinix, ...) with DeployOptions.BACnet
// instead; the MINIX backend defaults the policy to
// core.ScenarioPolicyWithGateway() whenever BACnet is enabled.
func DeployMinixWithBACnet(tb *Testbed, cfg ScenarioConfig, opts MinixOptions, bopts BACnetOptions) (*MinixDeployment, error) {
	if opts.Policy == nil {
		opts.Policy = core.ScenarioPolicyWithGateway()
	}
	platform := PlatformMinix
	if opts.DisableACM {
		platform = PlatformMinixVanilla
	}
	dep, err := Deploy(platform, tb, cfg, DeployOptions{
		SkipPolicyCheck: opts.SkipPolicyCheck,
		Policy:          opts.Policy,
		WebRoot:         opts.WebRoot,
		MinixWeb:        opts.WebBody,
		BACnet:          bopts,
	})
	if err != nil {
		return nil, err
	}
	return dep.(*MinixDeployment), nil
}

// gatewayStore adapts any platform's ControlClient to a BACnet property
// store. Temperature, heater, and alarm are read-only points; the setpoint
// is writable (and the controller still clamps it).
type gatewayStore struct {
	ctrl ControlClient
	sup  *Supervision // nil outside building deployments
}

var _ bacnet.PropertyStore = (*gatewayStore)(nil)

func (s *gatewayStore) ReadProperty(obj bacnet.ObjectID) (float64, uint8) {
	st, err := s.ctrl.Status()
	if err != nil {
		return 0, bacnet.CodeBadRequest
	}
	switch obj {
	case bacnet.ObjTemperature:
		return st.Temp, 0
	case bacnet.ObjSetpoint:
		return st.Setpoint, 0
	case bacnet.ObjHeater:
		return boolPoint(st.HeaterOn), 0
	case bacnet.ObjAlarm:
		return boolPoint(st.AlarmOn), 0
	default:
		return 0, bacnet.CodeUnknownObject
	}
}

func (s *gatewayStore) WriteProperty(obj bacnet.ObjectID, value float64) uint8 {
	switch obj {
	case bacnet.ObjSetpoint:
		if err := s.ctrl.SetSetpoint(value); err != nil {
			return bacnet.CodeWriteDenied
		}
		// A setpoint write that survived the frame checks and the
		// controller's range clamp is the committed supervisory state a
		// later outage falls back to.
		s.sup.NoteCommit(value)
		return 0
	case bacnet.ObjTemperature, bacnet.ObjHeater, bacnet.ObjAlarm:
		// The gateway's IPC authority has no path to the drivers; the
		// points are structurally read-only on every platform.
		return bacnet.CodeWriteDenied
	default:
		return bacnet.CodeUnknownObject
	}
}

func boolPoint(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// bacnetGateway is the platform-neutral half of the gateway process: frame
// handling, the optional secure proxy, and the observability wiring. The
// per-platform bodies supply only the ControlClient and the NetListener.
type bacnetGateway struct {
	server   *bacnet.Server
	proxy    *bacnet.Proxy
	events   *obs.EventLog
	accepted *obs.Counter
	rejected *obs.Counter
	sup      *Supervision // nil outside building deployments
}

// newBACnetGateway assembles the neutral gateway. state seeds the proxy's
// anti-replay nonce floor: the deployment owns one ProxyState per board, so
// a gateway reincarnated by the platform's recovery machinery still rejects
// frames captured before its restart (the satellite fix for the replay
// window a fresh in-memory table would reopen).
func newBACnetGateway(bopts BACnetOptions, ctrl ControlClient, state *bacnet.ProxyState, board *obs.Board, sup *Supervision) *bacnetGateway {
	deviceID := bopts.DeviceID
	if deviceID == 0 {
		deviceID = 1
	}
	server := bacnet.NewServer(deviceID, &gatewayStore{ctrl: ctrl, sup: sup})
	gw := &bacnetGateway{
		server:   server,
		events:   board.Events(),
		accepted: board.Metrics().Counter("bacnet_frames_accepted_total"),
		rejected: board.Metrics().Counter("bacnet_frames_rejected_total"),
		sup:      sup,
	}
	if len(bopts.Key) > 0 {
		gw.proxy = bacnet.NewProxyResuming(bopts.Key, server, state)
	}
	return gw
}

// serveBACnet is the gateway main loop, shared by all platforms: accept a
// connection, answer the frames on it until EOF, close, accept the next.
// The transport is connection-per-exchange — clients (the building head-end,
// the host harness) dial, exchange, and close, mirroring BACnet/IP's
// datagram nature — so a serial accept loop never starves a peer behind a
// long-lived connection.
func serveBACnet(l NetListener, gw *bacnetGateway) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		gw.serveConn(conn)
	}
}

// serveConn handles one connection until EOF. Legacy mode answers every
// frame; proxy mode silently drops unauthenticated or stale frames — and
// records each drop as a security event, so the mediation layer that stopped
// a bus attack shows up in reports exactly like an ACM or capability denial.
func (gw *bacnetGateway) serveConn(conn NetConn) {
	defer conn.Close()
	var d bacnet.Deframer
	// Reply frames are framed into a reused buffer: every platform's net
	// write syscall copies into the stack synchronously, so the buffer is
	// free again as soon as Write returns.
	var frameBuf []byte
	for {
		for {
			frame := d.Next()
			if frame == nil {
				break
			}
			var resp []byte
			if gw.proxy != nil {
				secured, err := gw.proxy.HandleFrame(frame)
				if err != nil {
					gw.rejected.Inc()
					gw.events.Emit(obs.SecurityEvent{
						Kind:      obs.EventFrameRejected,
						Mechanism: obs.MechSecureProxy,
						Denied:    true,
						Src:       "bas-bus",
						Dst:       NameBACnetGateway,
						Detail:    err.Error(),
					})
					continue
				}
				resp = secured
			} else {
				resp = gw.server.HandleFrame(frame)
			}
			gw.accepted.Inc()
			// Every frame that survived the checks above is supervisory
			// contact. On proxied rooms that means a verified head-end frame;
			// on legacy rooms anything on the bus counts — degraded-mode
			// detection inherits exactly the protocol's trust.
			gw.sup.NoteFrame()
			frameBuf = bacnet.AppendFrame(frameBuf[:0], resp)
			if err := conn.Write(frameBuf); err != nil {
				return
			}
		}
		data, err := conn.Read(0)
		if err != nil {
			return
		}
		d.Feed(data)
	}
}

// minixBACnetGatewayBody serves the (optionally proxied) protocol on
// BACnetPort as a MINIX process.
func minixBACnetGatewayBody(bopts BACnetOptions, state *bacnet.ProxyState, board *obs.Board, sup *Supervision) func(api *minix.API) {
	return func(api *minix.API) {
		ctrl, ok := minixLookupWait(api, NameTempControl)
		if !ok {
			return
		}
		gw := newBACnetGateway(bopts, &minixControlClient{api: api, ctrl: ctrl}, state, board, sup)
		l, err := api.NetListen(BACnetPort)
		if err != nil {
			api.Trace("bacnet", fmt.Sprintf("listen failed: %v", err))
			return
		}
		serveBACnet(minixListener{api: api, l: l}, gw)
	}
}

// sel4BACnetGatewayRun is the gateway's control thread on seL4: the CAmkES
// component holds exactly one connection, to the controller's management
// interface, so the capability system bounds what any bus frame can reach.
func sel4BACnetGatewayRun(bopts BACnetOptions, state *bacnet.ProxyState, board *obs.Board, sup *Supervision) func(rt *camkes.Runtime) {
	return func(rt *camkes.Runtime) {
		gw := newBACnetGateway(bopts, &sel4ControlClient{rt: rt}, state, board, sup)
		l, err := rt.NetListen(BACnetPort)
		if err != nil {
			rt.Trace("bacnet", fmt.Sprintf("listen failed: %v", err))
			return
		}
		serveBACnet(sel4Listener{rt: rt, l: l}, gw)
	}
}

// addSel4BACnetGateway appends the gateway component to the scenario
// assembly. Like the web interface it uses only the controller's mgmt
// interface; the controller distinguishes the two clients by badge.
func addSel4BACnetGateway(assembly *camkes.Assembly, bopts BACnetOptions, state *bacnet.ProxyState, board *obs.Board, sup *Supervision) {
	assembly.Components = append(assembly.Components, &camkes.Component{
		Name:     NameBACnetGateway,
		Priority: 7,
		Uses:     []string{IfaceMgmt},
		NetPorts: []vnet.Port{BACnetPort},
		Run:      sel4BACnetGatewayRun(bopts, state, board, sup),
	})
	assembly.Connections = append(assembly.Connections, camkes.Connection{
		FromComp: NameBACnetGateway, FromIface: IfaceMgmt,
		ToComp: NameTempControl, ToIface: IfaceMgmt,
	})
}

// linuxBACnetGatewayBody serves the protocol as a Linux process speaking to
// the controller over the web request/response queue pair — the only IPC the
// DAC modes grant a non-control-group account. The gateway and the web
// interface share those queues; in building deployments the web interface is
// idle, so responses never interleave.
func linuxBACnetGatewayBody(bopts BACnetOptions, state *bacnet.ProxyState, board *obs.Board, sup *Supervision) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		reqFD, err := linuxOpenRetry(api, QWebReq, linuxsim.MQOpenFlags{Write: true})
		if err != nil {
			api.Trace("bacnet", fmt.Sprintf("gateway: %v", err))
			return
		}
		respFD, err := linuxOpenRetry(api, QWebResp, linuxsim.MQOpenFlags{Read: true})
		if err != nil {
			api.Trace("bacnet", fmt.Sprintf("gateway: %v", err))
			return
		}
		ctrl := &linuxControlClient{api: api, reqFD: reqFD, respFD: respFD}
		gw := newBACnetGateway(bopts, ctrl, state, board, sup)
		l, err := api.NetListen(BACnetPort)
		if err != nil {
			api.Trace("bacnet", fmt.Sprintf("gateway: listen failed: %v", err))
			return
		}
		serveBACnet(linuxListener{api: api, l: l}, gw)
	}
}

// BACnetExchange sends one raw (legacy) frame from the host side and runs
// the board until the response arrives; nil response means the gateway
// dropped the frame (proxy mode) or never answered.
func (tb *Testbed) BACnetExchange(raw []byte) []byte {
	return tb.BACnetExchangeFrame(bacnet.Frame(raw))
}

// BACnetExchangeFrame is BACnetExchange for a pre-framed (length-prefixed)
// byte string — the shape a bus attacker replays verbatim from a capture.
func (tb *Testbed) BACnetExchangeFrame(framed []byte) []byte {
	conn, err := tb.Net.Dial(BACnetPort)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if err := conn.Write(framed); err != nil {
		return nil
	}
	var d bacnet.Deframer
	for i := 0; i < 40; i++ {
		tb.Machine.Run(50 * time.Millisecond)
		d.Feed(conn.ReadAll())
		if frame := d.Next(); frame != nil {
			return frame
		}
	}
	return nil
}
