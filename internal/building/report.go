package building

import (
	"encoding/json"

	"mkbas/internal/faultinject"
	"mkbas/internal/obs"
	"mkbas/internal/polcheck/monitor"
)

// RoomReport is one room's row in the building report: the BMS's view plus
// ground truth from the room's own deployment and observability layer.
type RoomReport struct {
	Room     int    `json:"room"`
	Platform string `json:"platform"`
	Secure   bool   `json:"secure"`

	BMS RoomState `json:"bms"`

	ControllerAlive bool    `json:"controller_alive"`
	Restarts        int     `json:"restarts"`
	Recovered       bool    `json:"recovered"`
	RoomTemp        float64 `json:"room_temp"`

	FramesAccepted int64 `json:"frames_accepted"`
	FramesRejected int64 `json:"frames_rejected"`

	FaultPlan string              `json:"fault_plan,omitempty"`
	Faults    *faultinject.Report `json:"faults,omitempty"`

	// Resilience columns: the room's share of the bus-fault campaign (each
	// fault closed at this room's own reconfirmation), head-end failovers
	// observed on this room's board, and the room-side supervisory watchdog
	// tallies.
	BusFaults           *faultinject.Report `json:"bus_faults,omitempty"`
	Failovers           int                 `json:"failovers,omitempty"`
	SupervisionLost     int64               `json:"supervision_lost,omitempty"`
	SupervisionRestored int64               `json:"supervision_restored,omitempty"`
	Degraded            bool                `json:"degraded,omitempty"`

	// Policy-monitor columns (absent when Config.Monitor is off).
	Monitor    *monitor.Stats `json:"monitor,omitempty"`
	BusDrifts  int64          `json:"bus_drifts,omitempty"`
	BusRefused int64          `json:"bus_refused,omitempty"`
	Demoted    bool           `json:"demoted,omitempty"`
}

// Report is the whole-building snapshot. Every field is derived from virtual
// state, so marshalling the same run twice — at any worker count — yields
// identical bytes.
type Report struct {
	Rooms    int     `json:"rooms"`
	Rounds   int     `json:"rounds"`
	Setpoint float64 `json:"setpoint"`
	Alarm    bool    `json:"alarm"`
	Flagged  []int   `json:"flagged"`

	PollsSent     int `json:"polls_sent"`
	PollsAnswered int `json:"polls_answered"`
	PollsMissed   int `json:"polls_missed"`
	WritesSent    int `json:"writes_sent"`

	RoomReports []RoomReport `json:"room_reports"`

	// Building-wide resilience summary (absent without bus faults/standby).
	BusFaultPlan  string              `json:"bus_fault_plan,omitempty"`
	BusFaults     *faultinject.Report `json:"bus_faults,omitempty"`
	Standby       bool                `json:"standby,omitempty"`
	FailoverRound int                 `json:"failover_round,omitempty"` // 0 = none (rounds are 1-based)
	Quarantined   []int               `json:"quarantined,omitempty"`

	// Building-wide policy-monitor tallies (absent when the monitor is off).
	BusDrifts  int64 `json:"bus_drifts,omitempty"`
	BusRefused int64 `json:"bus_refused,omitempty"`

	// API is the tenant-tier block (absent when Config.TenantAPI is off).
	API *APIReport `json:"api,omitempty"`

	// Building-wide aggregates merged across every room's board (plus the
	// tenant tier's own surfaces when attached). Histograms carries the
	// tier's per-route latency distributions.
	Counters    []obs.CounterSnap   `json:"counters"`
	Histograms  []obs.HistogramSnap `json:"histograms,omitempty"`
	EventTotals []obs.EventTotal    `json:"event_totals"`
	Mechanisms  []obs.Mechanism     `json:"mechanisms"`
}

// ActiveHead is the head-end currently holding the supervisory role: the
// standby after a takeover, the primary otherwise.
func (b *Building) ActiveHead() *HeadEnd {
	if b.Standby != nil && b.Standby.Active() {
		return b.Standby
	}
	return b.Head
}

// Report snapshots the building.
func (b *Building) Report() *Report {
	head := b.ActiveHead()
	states := head.RoomStates()
	rep := &Report{
		Rooms:         len(b.Rooms),
		Rounds:        b.round,
		Setpoint:      head.Setpoint(),
		Flagged:       []int{},
		PollsSent:     b.Head.pollsSent,
		PollsAnswered: b.Head.pollsAnswered,
		PollsMissed:   b.Head.pollsMissed,
		WritesSent:    b.Head.writesSent,
		Standby:       b.Standby != nil,
	}
	if b.Standby != nil {
		// Poll continuity spans the failover: the building's supervisory
		// totals are the sum of both head-ends' ledgers.
		rep.PollsSent += b.Standby.pollsSent
		rep.PollsAnswered += b.Standby.pollsAnswered
		rep.PollsMissed += b.Standby.pollsMissed
		rep.WritesSent += b.Standby.writesSent
	}
	if b.failoverRound > 0 {
		rep.FailoverRound = b.failoverRound
	}
	if b.BusInj != nil {
		rep.BusFaultPlan = b.BusInj.Plan().Name
		rep.BusFaults = b.BusInj.Report()
	}
	var counters [][]obs.CounterSnap
	var totals [][]obs.EventTotal
	var mechs [][]obs.Mechanism
	for i, room := range b.Rooms {
		board := room.Testbed.Machine.Obs()
		rr := RoomReport{
			Room:            room.Index,
			Platform:        string(room.Platform),
			Secure:          room.Secure,
			BMS:             states[i],
			ControllerAlive: room.Dep.ControllerAlive(),
			Restarts:        room.Dep.ControllerRestarts(),
			Recovered:       room.Dep.ControllerRecovered(),
			RoomTemp:        room.Testbed.Room.Temperature(),
			FramesAccepted:  board.Metrics().Counter("bacnet_frames_accepted_total").Value(),
			FramesRejected:  board.Metrics().Counter("bacnet_frames_rejected_total").Value(),
			FaultPlan:       room.Plan,
		}
		if room.Injector != nil {
			rr.Faults = room.Injector.Report()
		}
		if b.BusInj != nil {
			rr.BusFaults = b.BusInj.RoomReport(room.Index)
		}
		rr.Failovers = b.failovers
		rr.SupervisionLost = board.Metrics().Counter("supervision_lost_total").Value()
		rr.SupervisionRestored = board.Metrics().Counter("supervision_restored_total").Value()
		rr.Degraded = board.Metrics().Gauge("supervision_degraded").Value() != 0
		if states[i].Quarantined {
			rep.Quarantined = append(rep.Quarantined, room.Index)
		}
		if pm := room.Dep.PolicyMonitor(); pm != nil {
			stats := pm.Stats()
			rr.Monitor = &stats
		}
		rr.BusDrifts = b.BusDrifts(room.Index)
		rr.BusRefused = b.BusRefused(room.Index)
		rr.Demoted = b.RoomDemoted(room.Index)
		rep.BusDrifts += rr.BusDrifts
		rep.BusRefused += rr.BusRefused
		if states[i].Flagged {
			rep.Flagged = append(rep.Flagged, room.Index)
		}
		rep.RoomReports = append(rep.RoomReports, rr)
		obsRep := room.Dep.Report(false)
		counters = append(counters, obsRep.Counters)
		totals = append(totals, obsRep.EventTotals)
		mechs = append(mechs, board.Events().Mechanisms())
	}
	rep.Alarm = len(rep.Flagged) > 0
	api, apiCounters, apiHists, apiTotals, apiMechs := b.apiReport()
	if api != nil {
		rep.API = api
		counters = append(counters, apiCounters)
		totals = append(totals, apiTotals)
		mechs = append(mechs, apiMechs)
		rep.Histograms = obs.MergeHistograms(apiHists)
	}
	rep.Counters = obs.MergeCounters(counters...)
	rep.EventTotals = obs.MergeEventTotals(totals...)
	rep.Mechanisms = obs.MergeMechanisms(mechs...)
	return rep
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
