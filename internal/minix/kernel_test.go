package minix

import (
	"errors"
	"testing"
	"time"

	"mkbas/internal/core"
	"mkbas/internal/machine"
	"mkbas/internal/plant"
	"mkbas/internal/vnet"
)

// Test ACIDs.
const (
	acidA core.ACID = 100
	acidB core.ACID = 101
	acidC core.ACID = 102
)

// testPolicy allows A -> B types {0,1}, B -> A type {0}, and nothing else.
func testPolicy() *core.Policy {
	p := core.NewPolicy()
	p.IPC.Allow(acidA, acidB, 0, 1)
	p.IPC.Allow(acidB, acidA, 0)
	return p.Seal()
}

// testBoard boots a kernel on a fresh board.
func testBoard(t *testing.T, policy *core.Policy, cfg Config) (*machine.Machine, *Kernel) {
	t.Helper()
	m := machine.New(machine.Config{})
	k, err := Boot(m, policy, cfg)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	t.Cleanup(m.Shutdown)
	return m, k
}

func spawnOrFatal(t *testing.T, k *Kernel, image string, acid core.ACID) Endpoint {
	t.Helper()
	ep, err := k.SpawnImage(image, acid)
	if err != nil {
		t.Fatalf("SpawnImage(%q): %v", image, err)
	}
	return ep
}

func TestSendReceiveDeliversPayloadAndStampsSource(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var got Message
	var recvErr error
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		got, recvErr = api.Receive(EndpointAny)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, err := api.Lookup("b")
		if err != nil {
			t.Errorf("lookup b: %v", err)
			return
		}
		msg := NewMessage(1)
		msg.PutF64(0, 21.5)
		msg.Source = 0xDEADBEEF // attempt to forge: kernel must overwrite
		if err := api.Send(dst, msg); err != nil {
			t.Errorf("send: %v", err)
		}
	}})
	epB := spawnOrFatal(t, k, "b", acidB)
	epA := spawnOrFatal(t, k, "a", acidA)
	_ = epB
	m.Run(time.Second)
	if recvErr != nil {
		t.Fatalf("receive: %v", recvErr)
	}
	if got.Type != 1 || got.F64(0) != 21.5 {
		t.Fatalf("message = %v f64=%v", got, got.F64(0))
	}
	if got.Source != epA {
		t.Fatalf("source = %v, want kernel-stamped %v (forgery must fail)", got.Source, epA)
	}
}

func TestACMDeniesUnauthorizedType(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Receive(EndpointAny) // would block forever if nothing arrives
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		sendErr = api.Send(dst, NewMessage(2)) // type 2 not granted
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(sendErr, core.ErrDenied) {
		t.Fatalf("send err = %v, want ACM denial", sendErr)
	}
	if k.Stats().IPCDenied != 1 {
		t.Fatalf("IPCDenied = %d, want 1", k.Stats().IPCDenied)
	}
	if len(m.Trace().Grep("DENY")) == 0 {
		t.Fatal("no audit line for the denial")
	}
}

func TestACMDeniesUnauthorizedPair(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	k.RegisterImage(Image{Name: "c", Priority: 7, Body: func(api *API) {
		api.Receive(EndpointAny)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("c")
		sendErr = api.Send(dst, NewMessage(0))
	}})
	spawnOrFatal(t, k, "c", acidC)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(sendErr, core.ErrDenied) {
		t.Fatalf("send err = %v, want ACM denial (no A->C cell)", sendErr)
	}
}

func TestDisableACMAllowsEverything(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{DisableACM: true})
	var sendErr error
	var got Message
	k.RegisterImage(Image{Name: "c", Priority: 7, Body: func(api *API) {
		got, _ = api.Receive(EndpointAny)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("c")
		sendErr = api.Send(dst, NewMessage(9))
	}})
	spawnOrFatal(t, k, "c", acidC)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if sendErr != nil {
		t.Fatalf("vanilla kernel denied send: %v", sendErr)
	}
	if got.Type != 9 {
		t.Fatalf("message not delivered: %v", got)
	}
}

func TestMessageTypeOutOfACMRangeDenied(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Receive(EndpointAny)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		sendErr = api.Send(dst, NewMessage(200))
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(sendErr, core.ErrDenied) {
		t.Fatalf("send err = %v, want denial for type 200", sendErr)
	}
}

func TestSendRecRPCRoundTrip(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var reply Message
	var rpcErr error
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		req, err := api.Receive(EndpointAny)
		if err != nil {
			return
		}
		resp := NewMessage(0)
		resp.PutF64(0, req.F64(0)*2)
		api.Send(req.Source, resp)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		req := NewMessage(1)
		req.PutF64(0, 10)
		reply, rpcErr = api.SendRec(dst, req)
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if rpcErr != nil {
		t.Fatalf("sendrec: %v", rpcErr)
	}
	if reply.F64(0) != 20 {
		t.Fatalf("reply payload = %v, want 20", reply.F64(0))
	}
}

func TestSendNBQueuesInMailbox(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{MailboxCap: 2})
	var errs []error
	var received []float64
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		for i := 0; i < 3; i++ {
			msg := NewMessage(1)
			msg.PutF64(0, float64(i))
			errs = append(errs, api.SendNB(dst, msg))
		}
	}})
	k.RegisterImage(Image{Name: "b", Priority: 8, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond) // let the sender fill the mailbox
		for i := 0; i < 2; i++ {
			msg, err := api.Receive(EndpointAny)
			if err == nil {
				received = append(received, msg.F64(0))
			}
		}
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("first two sends should queue: %v", errs)
	}
	if !errors.Is(errs[2], ErrMailboxFull) {
		t.Fatalf("third send err = %v, want ErrMailboxFull", errs[2])
	}
	if len(received) != 2 || received[0] != 0 || received[1] != 1 {
		t.Fatalf("received = %v, want FIFO [0 1]", received)
	}
}

func TestNotifyCollapsesAndHasPriority(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var order []int32
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		msg := NewMessage(1)
		if err := api.SendNB(dst, msg); err != nil {
			t.Errorf("sendnb: %v", err)
		}
		// Two notifications collapse into one.
		api.Notify(dst)
		api.Notify(dst)
	}})
	k.RegisterImage(Image{Name: "b", Priority: 8, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond)
		for i := 0; i < 2; i++ {
			msg, err := api.Receive(EndpointAny)
			if err == nil {
				order = append(order, msg.Type)
			}
		}
		// A third receive must block: the second notify collapsed.
		_, err := api.Receive(EndpointAny)
		if err == nil {
			t.Error("third receive returned; notification did not collapse")
		}
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	res := m.Run(time.Second)
	if res.Reason != machine.StopIdle {
		t.Fatalf("run reason = %v, want idle (b blocked on third receive)", res.Reason)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want notification (type 0) before message (type 1)", order)
	}
}

func TestReceiveFromSpecificSource(t *testing.T) {
	policy := core.NewPolicy()
	policy.IPC.Allow(acidA, acidC, 1)
	policy.IPC.Allow(acidB, acidC, 2)
	policy.Seal()
	m, k := testBoard(t, policy, Config{})
	var first Message
	k.RegisterImage(Image{Name: "c", Priority: 8, Body: func(api *API) {
		api.Sleep(20 * time.Millisecond) // let both senders queue
		epB, _ := api.Lookup("b")
		first, _ = api.Receive(epB) // selective receive: b even though a queued first
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("c")
		api.Send(dst, NewMessage(1))
	}})
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Sleep(5 * time.Millisecond)
		dst, _ := api.Lookup("c")
		api.Send(dst, NewMessage(2))
	}})
	spawnOrFatal(t, k, "c", acidC)
	spawnOrFatal(t, k, "a", acidA)
	spawnOrFatal(t, k, "b", acidB)
	m.Run(time.Second)
	if first.Type != 2 {
		t.Fatalf("selective receive got type %d, want 2 (from b)", first.Type)
	}
}

func TestSendToDeadEndpointFails(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	var epB Endpoint
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		// exits immediately
	}})
	k.RegisterImage(Image{Name: "a", Priority: 8, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond) // let b exit
		sendErr = api.Send(epB, NewMessage(1))
	}})
	epB = spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(sendErr, ErrDeadSrcDst) {
		t.Fatalf("send err = %v, want ErrDeadSrcDst", sendErr)
	}
}

func TestBlockedSenderWokenWhenReceiverDies(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	sendReturned := false
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Sleep(20 * time.Millisecond)
		api.Exit() // die without ever receiving
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		sendErr = api.Send(dst, NewMessage(1))
		sendReturned = true
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !sendReturned {
		t.Fatal("sender still blocked after receiver died")
	}
	if !errors.Is(sendErr, ErrDeadSrcDst) {
		t.Fatalf("send err = %v, want ErrDeadSrcDst", sendErr)
	}
}

func TestStaleEndpointAfterRestartIsDead(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	epOld := spawnOrFatal(t, k, "b", acidB)
	m.Run(10 * time.Millisecond)
	// Kill and respawn into (likely) the same slot.
	entry := k.resolve(epOld)
	if entry == nil {
		t.Fatal("b not live")
	}
	entry.exiting = true
	if err := m.Engine().Kill(entry.pid); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	epNew := spawnOrFatal(t, k, "b", acidB)
	if epOld == epNew {
		t.Fatalf("endpoint reused verbatim: %v", epOld)
	}
	if epOld.Slot() == epNew.Slot() && epOld.Generation() == epNew.Generation() {
		t.Fatal("generation did not advance")
	}
	if k.Alive(epOld) {
		t.Fatal("stale endpoint still resolves")
	}
	if !k.Alive(epNew) {
		t.Fatal("new endpoint does not resolve")
	}
}

func TestDevicePrivilegeEnforced(t *testing.T) {
	m := machine.New(machine.Config{})
	room := plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), plant.DefaultConfig()))
	_ = room
	k, err := Boot(m, testPolicy(), Config{})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	t.Cleanup(m.Shutdown)

	var readVal uint32
	var readErr, deniedErr error
	k.RegisterImage(Image{
		Name: "driver", Priority: 7,
		Devices: []machine.DeviceID{plant.DevTempSensor},
		Body: func(api *API) {
			readVal, readErr = api.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
		},
	})
	k.RegisterImage(Image{Name: "intruder", Priority: 7, Body: func(api *API) {
		_, deniedErr = api.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
	}})
	spawnOrFatal(t, k, "driver", acidA)
	spawnOrFatal(t, k, "intruder", acidB)
	m.Run(time.Second)
	if readErr != nil {
		t.Fatalf("driver read: %v", readErr)
	}
	if got := plant.DecodeTemp(readVal); got < 17 || got > 19 {
		t.Fatalf("driver read temp %v, want ~18", got)
	}
	if !errors.Is(deniedErr, ErrNoPrivilege) {
		t.Fatalf("intruder err = %v, want ErrNoPrivilege", deniedErr)
	}
}

func TestPMFork2InheritsACID(t *testing.T) {
	m, k := testBoard(t, forkPolicy(), Config{})
	var childACID core.ACID
	k.RegisterImage(Image{Name: "child", Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "parent", Priority: 7, Body: func(api *API) {
		ep, err := api.Fork2("child", 0)
		if err != nil {
			t.Errorf("fork2: %v", err)
			return
		}
		acid, err := k.ACIDOf(ep)
		if err != nil {
			t.Errorf("ACIDOf: %v", err)
		}
		childACID = acid
	}})
	spawnOrFatal(t, k, "parent", acidA)
	m.Run(time.Second)
	if childACID != acidA {
		t.Fatalf("child acid = %d, want inherited %d", childACID, acidA)
	}
}

// forkPolicy grants A fork but not set_acid or kill.
func forkPolicy() *core.Policy {
	p := core.NewPolicy()
	p.Syscalls.Grant(acidA, core.SysFork)
	return p.Seal()
}

func TestPMFork2WithForeignACIDNeedsSetACID(t *testing.T) {
	m, k := testBoard(t, forkPolicy(), Config{})
	var forkErr error
	k.RegisterImage(Image{Name: "child", Priority: 7, Body: func(api *API) {}})
	k.RegisterImage(Image{Name: "parent", Priority: 7, Body: func(api *API) {
		_, forkErr = api.Fork2("child", uint32(acidC))
	}})
	spawnOrFatal(t, k, "parent", acidA)
	m.Run(time.Second)
	if !errors.Is(forkErr, ErrPMDenied) {
		t.Fatalf("fork2 err = %v, want PM denial (no set_acid grant)", forkErr)
	}
}

func TestPMKillDeniedWithoutGrant(t *testing.T) {
	m, k := testBoard(t, forkPolicy(), Config{})
	var killErr error
	var victimEP Endpoint
	k.RegisterImage(Image{Name: "victim", Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "killer", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("victim")
		killErr = api.Kill(dst)
	}})
	victimEP = spawnOrFatal(t, k, "victim", acidB)
	spawnOrFatal(t, k, "killer", acidA)
	m.Run(time.Second)
	if !errors.Is(killErr, ErrPMDenied) {
		t.Fatalf("kill err = %v, want PM denial", killErr)
	}
	if !k.Alive(victimEP) {
		t.Fatal("victim died despite denial")
	}
	if k.PM().KillsDenied() != 1 {
		t.Fatalf("KillsDenied = %d, want 1", k.PM().KillsDenied())
	}
}

func TestPMKillGrantedWorks(t *testing.T) {
	p := core.NewPolicy()
	p.Syscalls.Grant(acidA, core.SysKill)
	p.Seal()
	m, k := testBoard(t, p, Config{})
	var killErr error
	var victimEP Endpoint
	k.RegisterImage(Image{Name: "victim", Priority: 7, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "killer", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("victim")
		killErr = api.Kill(dst)
	}})
	victimEP = spawnOrFatal(t, k, "victim", acidB)
	spawnOrFatal(t, k, "killer", acidA)
	m.Run(time.Second)
	if killErr != nil {
		t.Fatalf("kill: %v", killErr)
	}
	if k.Alive(victimEP) {
		t.Fatal("victim survived a granted kill")
	}
}

func TestPMForkQuotaStopsForkBomb(t *testing.T) {
	p := core.NewPolicy()
	p.Syscalls.GrantQuota(acidA, core.SysFork, 3)
	p.Seal()
	m, k := testBoard(t, p, Config{})
	var granted, denied int
	var lastErr error
	k.RegisterImage(Image{Name: "drone", Priority: 9, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "bomber", Priority: 7, Body: func(api *API) {
		for i := 0; i < 50; i++ {
			if _, err := api.Fork2("drone", 0); err != nil {
				denied++
				lastErr = err
			} else {
				granted++
			}
		}
	}})
	spawnOrFatal(t, k, "bomber", acidA)
	m.Run(time.Second)
	if granted != 3 || denied != 47 {
		t.Fatalf("granted=%d denied=%d, want 3/47", granted, denied)
	}
	if !errors.Is(lastErr, ErrPMQuota) {
		t.Fatalf("denial err = %v, want quota", lastErr)
	}
	if got := k.PM().ForkQuotaRemaining(acidA); got != 0 {
		t.Fatalf("remaining quota = %d, want 0", got)
	}
}

func TestRSRestartsCrashedDriver(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	starts := 0
	k.RegisterImage(Image{
		Name: "flaky-driver", Priority: 7, Restart: true,
		Body: func(api *API) {
			starts++
			if starts == 1 {
				panic("driver bug") // first incarnation crashes
			}
			api.Sleep(time.Hour)
		},
	})
	ep1 := spawnOrFatal(t, k, "flaky-driver", acidA)
	m.Run(time.Second)
	if starts != 2 {
		t.Fatalf("starts = %d, want 2 (crash + reincarnation)", starts)
	}
	if k.RS().Restarts("flaky-driver") != 1 {
		t.Fatalf("RS restarts = %d, want 1", k.RS().Restarts("flaky-driver"))
	}
	ep2, err := k.EndpointOf("flaky-driver")
	if err != nil {
		t.Fatalf("driver not republished: %v", err)
	}
	if ep2 == ep1 {
		t.Fatal("reincarnated driver has the same endpoint")
	}
	acid, err := k.ACIDOf(ep2)
	if err != nil || acid != acidA {
		t.Fatalf("reincarnated acid = %d,%v want %d (policy must keep applying)", acid, err, acidA)
	}
}

func TestRSGivesUpAfterCrashLoop(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	starts := 0
	k.RegisterImage(Image{
		Name: "doomed", Priority: 7, Restart: true,
		Body: func(api *API) {
			starts++
			panic("always crashes")
		},
	})
	spawnOrFatal(t, k, "doomed", acidA)
	m.Run(time.Minute)
	if starts != maxRestartsPerImage+1 {
		t.Fatalf("starts = %d, want %d (initial + capped restarts)", starts, maxRestartsPerImage+1)
	}
}

func TestNonRestartImageStaysDead(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	starts := 0
	k.RegisterImage(Image{Name: "oneshot", Priority: 7, Body: func(api *API) {
		starts++
		panic("crash")
	}})
	spawnOrFatal(t, k, "oneshot", acidA)
	m.Run(time.Second)
	if starts != 1 {
		t.Fatalf("starts = %d, want 1", starts)
	}
}

func TestNetRequiresPrivilege(t *testing.T) {
	stack := vnet.NewStack()
	m, k := testBoard(t, testPolicy(), Config{Net: stack})
	var listenErr error
	k.RegisterImage(Image{Name: "noprivs", Priority: 7, Body: func(api *API) {
		_, listenErr = api.NetListen(8080)
	}})
	spawnOrFatal(t, k, "noprivs", acidA)
	m.Run(time.Second)
	if !errors.Is(listenErr, ErrNoPrivilege) {
		t.Fatalf("listen err = %v, want ErrNoPrivilege", listenErr)
	}
}

func TestNetEchoServer(t *testing.T) {
	stack := vnet.NewStack()
	m, k := testBoard(t, testPolicy(), Config{Net: stack})
	k.RegisterImage(Image{Name: "echo", Priority: 7, Net: true, Body: func(api *API) {
		l, err := api.NetListen(8080)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := api.NetAccept(l)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		data, err := api.NetRead(conn, 0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if err := api.NetWrite(conn, append([]byte("echo:"), data...)); err != nil {
			t.Errorf("write: %v", err)
		}
		api.NetClose(conn)
	}})
	spawnOrFatal(t, k, "echo", acidA)
	m.Run(10 * time.Millisecond) // let the server block in accept

	host, err := stack.Dial(8080)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := host.Write([]byte("ping")); err != nil {
		t.Fatalf("host write: %v", err)
	}
	m.Run(time.Second)
	if got := string(host.ReadAll()); got != "echo:ping" {
		t.Fatalf("host read %q, want echo:ping", got)
	}
	if !host.Closed() {
		t.Fatal("server did not close the connection")
	}
}

func TestExitFreesSlotAndName(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(Image{Name: "brief", Priority: 7, Body: func(api *API) {
		api.Exit()
	}})
	ep := spawnOrFatal(t, k, "brief", acidA)
	m.Run(time.Second)
	if k.Alive(ep) {
		t.Fatal("exited process still alive")
	}
	if _, err := k.EndpointOf("brief"); !errors.Is(err, ErrNameNotFound) {
		t.Fatalf("name lookup after exit = %v, want not-found", err)
	}
	if k.Stats().Crashes != 0 {
		t.Fatal("voluntary exit counted as crash")
	}
}

func TestSelfSendRefused(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var sendErr error
	k.RegisterImage(Image{Name: "narcissist", Priority: 7, Body: func(api *API) {
		sendErr = api.Send(api.Self(), NewMessage(0))
	}})
	spawnOrFatal(t, k, "narcissist", acidA)
	m.Run(time.Second)
	if !errors.Is(sendErr, ErrSelfSend) {
		t.Fatalf("err = %v, want ErrSelfSend", sendErr)
	}
}

func TestUnprivilegedKernelCallsDenied(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	var spawnErr, killErr error
	k.RegisterImage(Image{Name: "sneaky", Priority: 7, Body: func(api *API) {
		_, spawnErr = api.kSpawn("anything", acidC)
		killErr = api.kKill(api.Self())
	}})
	spawnOrFatal(t, k, "sneaky", acidA)
	m.Run(time.Second)
	if !errors.Is(spawnErr, ErrNoPrivilege) {
		t.Fatalf("kSpawn err = %v, want ErrNoPrivilege", spawnErr)
	}
	if !errors.Is(killErr, ErrNoPrivilege) {
		t.Fatalf("kKill err = %v, want ErrNoPrivilege", killErr)
	}
}

func TestBootRequiresSealedPolicy(t *testing.T) {
	m := machine.New(machine.Config{})
	if _, err := Boot(m, core.NewPolicy(), Config{}); !errors.Is(err, core.ErrNotSealed) {
		t.Fatalf("Boot err = %v, want ErrNotSealed", err)
	}
}

func TestMessagePayloadCodec(t *testing.T) {
	var msg Message
	msg.PutU32(0, 42)
	msg.PutF64(8, 3.14)
	msg.PutI64(16, -7)
	msg.PutString(24, "hello")
	if msg.U32(0) != 42 || msg.F64(8) != 3.14 || msg.I64(16) != -7 || msg.GetString(24) != "hello" {
		t.Fatalf("codec round trip failed: %v %v %v %q",
			msg.U32(0), msg.F64(8), msg.I64(16), msg.GetString(24))
	}
}

func TestMessageStringTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized PutString did not panic")
		}
	}()
	var msg Message
	msg.PutString(40, "this string is definitely longer than sixteen bytes")
}

func TestEndpointEncoding(t *testing.T) {
	ep := makeEndpoint(17, 3)
	if ep.Slot() != 17 || ep.Generation() != 3 {
		t.Fatalf("slot=%d gen=%d, want 17/3", ep.Slot(), ep.Generation())
	}
	if ep.String() != "ep(17:3)" {
		t.Fatalf("String = %q", ep.String())
	}
}
