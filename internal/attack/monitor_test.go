package attack

import (
	"testing"
	"time"
)

// E12: the online policy monitor under real attack traffic. The deployment
// tests (internal/bas) pin the mechanism — synchronous, same-tick detection
// through the kernels' record funnel; these pin the security results: a
// kernel that delivers uncertified traffic is caught by the monitor through
// its own IPC path, an enforcing kernel leaves the monitor silent, and the
// demote response flips the building's lateral-movement verdicts.

func TestMonitorDetectsVanillaMinixSpoofThroughKernelPath(t *testing.T) {
	// Vanilla MINIX enforces nothing, so the spoofed sensor frames are
	// delivered — and every delivery is recorded, so the monitor sees the
	// attack the ACM would have blocked. Runtime verification is the only
	// policy check this configuration has.
	r := mustExecute(t, Spec{Platform: PlatformMinixVanilla, Action: ActionSpoofSensor, Monitor: true})
	if !r.OperationSucceeded {
		t.Fatal("vanilla MINIX should deliver the spoof")
	}
	if r.MonitorStats == nil {
		t.Fatal("no monitor stats on a monitored run")
	}
	if r.MonitorStats.PolicyDrifts == 0 {
		t.Fatalf("delivered spoof traffic never drifted: %+v", r.MonitorStats)
	}
}

func TestMonitorDetectsLinuxActuatorTakeover(t *testing.T) {
	// Same-account Linux DAC delivers the forged actuator commands; the
	// monitor checks them against the scenario contract and flags every one.
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionCommandActuators, Monitor: true})
	if !r.OperationSucceeded {
		t.Fatal("actuator takeover should succeed on Linux")
	}
	if r.MonitorStats == nil || r.MonitorStats.PolicyDrifts == 0 {
		t.Fatalf("takeover traffic never drifted: %+v", r.MonitorStats)
	}
}

func TestMonitorSilentWhereKernelEnforces(t *testing.T) {
	// On the enforcing platforms every delivery the kernel lets through rides
	// a certified grant — on seL4 the brute-forcing attacker's only accepted
	// sends go through the web component's own endpoint capability, which IS
	// its certified edge. The kernel verdict and the monitor verdict must
	// agree: zero drift between the static graph and the observed traffic.
	for _, p := range []Platform{PlatformMinix, PlatformSel4} {
		r := mustExecute(t, Spec{Platform: p, Action: ActionSpoofSensor, Monitor: true})
		if r.PhysicalCompromise {
			t.Fatalf("%s: spoof compromised the plant", p)
		}
		if r.MonitorStats == nil {
			t.Fatalf("%s: no monitor stats", p)
		}
		if r.MonitorStats.Observed == 0 {
			t.Fatalf("%s: monitor observed nothing", p)
		}
		if r.MonitorStats.PolicyDrifts != 0 || r.MonitorStats.OriginDrifts != 0 {
			t.Fatalf("%s: drift on a fully-mediated board: %+v", p, r.MonitorStats)
		}
	}
}

func TestDemoteSpecLowersWebOrigin(t *testing.T) {
	r := mustExecute(t, Spec{Platform: PlatformLinux, Action: ActionSpoofSensor, Demote: true})
	if r.MonitorStats == nil {
		t.Fatal("Demote implies Monitor; stats missing")
	}
	if r.MonitorStats.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1 (web interface demoted at attack start)", r.MonitorStats.Demotions)
	}
}

// TestBuildingDemoteFlipsVerdicts is E12's acceptance case: an all-legacy
// building where the lateral-movement attack compromises every sibling room
// in the baseline, re-run with origin demotion enforcing the certified bus
// dial set. The attacker's uncertified dials are refused at the first flush,
// no forged frame lands, and every formerly-COMPROMISED room reports SECURE.
func TestBuildingDemoteFlipsVerdicts(t *testing.T) {
	spec := BuildingSpec{
		Rooms:  4,
		Mix:    buildingMix(),
		Secure: make([]bool, 4), // all legacy: the baseline worst case
		Attack: true,
		Settle: 10 * time.Minute,
		Window: 20 * time.Minute,
	}
	baseline, err := ExecuteBuilding(spec)
	if err != nil {
		t.Fatal(err)
	}
	var compromised []int
	for _, o := range baseline.Outcomes[1:] {
		if o.Verdict == "COMPROMISED" {
			compromised = append(compromised, o.Room)
		}
	}
	if len(compromised) == 0 {
		t.Fatal("baseline all-legacy building has no compromised rooms; the delta has nothing to show")
	}
	if baseline.Building.BusDrifts != 0 {
		t.Fatalf("unmonitored baseline recorded bus drifts: %d", baseline.Building.BusDrifts)
	}

	spec.Demote = true
	demoted, err := ExecuteBuilding(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, room := range compromised {
		o := demoted.Outcomes[room]
		if o.Verdict != "SECURE" {
			t.Fatalf("room %d (%s): verdict %s under demotion, want SECURE (was COMPROMISED)",
				room, o.Platform, o.Verdict)
		}
		if o.ForgedAccepted != 0 || o.ReplaysAccepted != 0 {
			t.Fatalf("room %d accepted attacker frames despite refused dials: %+v", room, o)
		}
	}
	// The refusals are attributed to the foothold room, whose node originated
	// the uncertified dials, and its web subject was demoted on the first one.
	o0 := demoted.Outcomes[0]
	if o0.BusDrifts == 0 || o0.BusRefused == 0 {
		t.Fatalf("foothold room recorded no refused dials: %+v", o0)
	}
	if !o0.Demoted {
		t.Fatal("foothold room's web subject was never demoted")
	}
	if demoted.Building.BusRefused != o0.BusRefused {
		t.Fatalf("building refusal total %d != foothold room %d",
			demoted.Building.BusRefused, o0.BusRefused)
	}
}

// TestBuildingMonitorOnlyObservesWithoutChangingVerdicts: observe-only mode
// must record the drift but leave outcomes exactly as the baseline — the
// monitor is a measurement instrument until demotion arms it.
func TestBuildingMonitorOnlyObservesWithoutChangingVerdicts(t *testing.T) {
	spec := BuildingSpec{
		Rooms:  4,
		Mix:    buildingMix(),
		Secure: make([]bool, 4),
		Attack: true,
		Settle: 10 * time.Minute,
		Window: 20 * time.Minute,
	}
	baseline, err := ExecuteBuilding(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Monitor = true
	observed, err := ExecuteBuilding(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline.Outcomes {
		if baseline.Outcomes[i].Verdict != observed.Outcomes[i].Verdict {
			t.Fatalf("room %d verdict changed under observe-only monitor: %s -> %s",
				i, baseline.Outcomes[i].Verdict, observed.Outcomes[i].Verdict)
		}
	}
	if observed.Building.BusDrifts == 0 {
		t.Fatal("observe-only monitor recorded no uncertified bus dials")
	}
	if observed.Building.BusRefused != 0 {
		t.Fatalf("observe-only monitor refused %d dials", observed.Building.BusRefused)
	}
}
