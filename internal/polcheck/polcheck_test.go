package polcheck

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"mkbas/internal/capdl"
	"mkbas/internal/core"
	"mkbas/internal/machine"
	"mkbas/internal/sel4"
)

// testMatrix is a three-subject chain a→b→c plus an unrelated loner.
func testMatrix(t *testing.T) *core.Matrix {
	t.Helper()
	m := core.NewMatrix()
	m.Name(1, "a").Name(2, "b").Name(3, "c").Name(4, "loner")
	m.Allow(1, 2, 10)
	m.Allow(2, 3, 11)
	return m.Seal()
}

func TestFromMatrixEdges(t *testing.T) {
	g := FromMatrix(testMatrix(t))
	if g.Platform != "minix-acm" {
		t.Fatalf("platform = %q", g.Platform)
	}
	flows := g.FlowsFrom(Subject("a"))
	if len(flows) != 1 || flows[0].To != Subject("b") {
		t.Fatalf("flows from a = %+v", flows)
	}
	if got := flows[0].Labels; len(got) != 1 || got[0] != "mt10" {
		t.Fatalf("labels = %v", got)
	}
}

func TestFromMatrixWildcard(t *testing.T) {
	m := core.NewMatrix()
	m.Name(1, "a").Name(2, "b")
	m.AllowMask(1, 2, core.MaskAll)
	g := FromMatrix(m.Seal())
	flows := g.FlowsFrom(Subject("a"))
	if len(flows) != 1 || len(flows[0].Labels) != 1 || flows[0].Labels[0] != "mt*" {
		t.Fatalf("wildcard flows = %+v", flows)
	}
}

func TestReachModes(t *testing.T) {
	g := FromMatrix(testMatrix(t))
	// Direct: a reaches b (one hop) but must NOT flow through b to c.
	if _, ok := g.Reachable("a", "b", ReachDirect); !ok {
		t.Fatal("a should reach b directly")
	}
	if _, ok := g.Reachable("a", "c", ReachDirect); ok {
		t.Fatal("a must not reach c directly: the only route is mediated by b")
	}
	// Transitive: the information-flow closure includes c.
	path, ok := g.Reachable("a", "c", ReachTransitive)
	if !ok {
		t.Fatal("a should reach c transitively")
	}
	if want := "a -[mt10]-> b -[mt11]-> c"; path.String() != want {
		t.Fatalf("path = %q, want %q", path.String(), want)
	}
	if got := g.ReachableSubjects("a", ReachTransitive); len(got) != 2 {
		t.Fatalf("transitive reach of a = %v", got)
	}
	if got := g.Reach("loner", ReachTransitive); len(got) != 0 {
		t.Fatalf("loner reaches %v", got)
	}
	if got := g.Reach("no-such-subject", ReachDirect); len(got) != 0 {
		t.Fatalf("unknown subject reaches %v", got)
	}
}

func TestReachThroughChannel(t *testing.T) {
	g := NewGraph("test")
	g.AddFlow(Subject("w"), Channel("q"), []string{"send"}, "t")
	g.AddFlow(Channel("q"), Subject("r"), []string{"recv"}, "t")
	path, ok := g.Reachable("w", "r", ReachDirect)
	if !ok {
		t.Fatal("w should reach r through the queue in direct mode")
	}
	if want := "w -[send]-> q -[recv]-> r"; path.String() != want {
		t.Fatalf("path = %q", path.String())
	}
}

func TestFromCapDLKillAndDeviceEdges(t *testing.T) {
	spec := &capdl.Spec{}
	spec.AddObject("ep_srv_rpc", sel4.KindEndpoint)
	spec.AddObject("tcb_victim", sel4.KindTCB)
	spec.AddObject("dev_x", sel4.KindDevice)
	spec.AddCap("attacker", capdl.CapSpec{Slot: 1, Object: "ep_srv_rpc", Rights: sel4.CapWrite})
	spec.AddCap("attacker", capdl.CapSpec{Slot: 2, Object: "tcb_victim", Rights: sel4.CapWrite})
	spec.AddCap("srv.rpc", capdl.CapSpec{Slot: 0, Object: "ep_srv_rpc", Rights: sel4.CapRead})
	spec.AddCap("srv", capdl.CapSpec{Slot: 3, Object: "dev_x", Rights: sel4.RightsRW})
	g := FromCapDL(spec)

	// Thread names collapse to components: "srv.rpc" and "srv" are one subject.
	if subs := g.Subjects(); len(subs) != 3 { // attacker, srv, victim
		t.Fatalf("subjects = %v", subs)
	}
	if _, ok := g.Reachable("attacker", "srv", ReachDirect); !ok {
		t.Fatal("attacker should reach srv via the endpoint")
	}
	if origin, ok := g.CanKill("attacker", "victim"); !ok || origin == "" {
		t.Fatal("TCB write cap must yield a kill edge")
	}
	if _, ok := g.CanKill("srv", "victim"); ok {
		t.Fatal("srv holds no TCB cap")
	}
	// Device edges exist both ways for an RW cap.
	devFlows := g.FlowsFrom(Subject("srv"))
	foundDev := false
	for _, e := range devFlows {
		if e.To == Device("dev_x") {
			foundDev = true
		}
	}
	if !foundDev {
		t.Fatalf("srv device flows missing: %+v", devFlows)
	}
	// Device targets do not count toward the IPC surface.
	if targets := g.SendTargets("srv"); len(targets) != 0 {
		t.Fatalf("srv send targets = %v", targets)
	}
}

func TestCapDLSubjectOf(t *testing.T) {
	for in, want := range map[string]string{
		"web":       "web",
		"ctrl.mgmt": "ctrl",
		"a.b.c":     "a",
		".weird":    ".weird", // leading dot: no component prefix to strip
		"tcb_x":     "tcb_x",
	} {
		if got := CapDLSubjectOf(in); got != want {
			t.Errorf("CapDLSubjectOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFromDACRootBypass(t *testing.T) {
	model := &DACModel{
		Subjects: []DACSubject{
			{Name: "root", UID: 0, GID: 0},
			{Name: "alice", UID: 1, GID: 10},
			{Name: "bob", UID: 2, GID: 20},
		},
		Queues: []DACObject{
			{Name: "/q", OwnerUID: 2, OwnerGID: 20, Mode: 0o600},
		},
	}
	g := FromDAC(model)
	// Only the owner and root pass the DAC check on a 0600 queue.
	if _, ok := g.Reachable("alice", "bob", ReachDirect); ok {
		t.Fatal("alice must not reach bob's private queue")
	}
	if _, ok := g.Reachable("root", "bob", ReachDirect); !ok {
		t.Fatal("root bypasses DAC")
	}
	if _, ok := g.CanKill("root", "alice"); !ok {
		t.Fatal("root can kill anyone")
	}
	if _, ok := g.CanKill("alice", "bob"); ok {
		t.Fatal("different uids cannot kill each other")
	}
}

func TestPropertyChecks(t *testing.T) {
	g := FromMatrix(testMatrix(t))
	cases := []struct {
		prop Property
		want Severity
	}{
		{DenyPath{From: "a", To: "b"}, SeverityViolation},
		{DenyPath{From: "a", To: "c"}, SeverityOK}, // mediated only
		{DenyPath{From: "loner", To: "c"}, SeverityOK},
		{AllowPath{From: "a", To: "b"}, SeverityOK},
		{AllowPath{From: "a", To: "c"}, SeverityViolation}, // mediated does not satisfy allow
		{NoKillAuthority{Subject: "a", Target: "b"}, SeverityOK},
		{OnlyEndpoint{Subject: "a", Max: 1}, SeverityOK},
		{OnlyEndpoint{Subject: "a", Max: 0}, SeverityViolation},
	}
	for _, tc := range cases {
		f := tc.prop.Check(g)
		if f.Severity != tc.want {
			t.Errorf("%s: severity = %s, want %s (%s)", tc.prop.Name(), f.Severity, tc.want, f.Detail)
		}
	}
}

func TestDenyPathViolationCarriesWitness(t *testing.T) {
	g := FromMatrix(testMatrix(t))
	f := DenyPath{From: "a", To: "b"}.Check(g)
	if len(f.Path) != 2 || f.Path[0] != "a" || f.Path[1] != "b" {
		t.Fatalf("witness path = %v", f.Path)
	}
}

func TestParseProperties(t *testing.T) {
	props, err := ParseProperties(`
# the scenario contract
deny_path(web, heater)
allow_path(sensor, ctrl)
no_kill_authority(web, ctrl)
only_endpoint(web, 1)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 4 {
		t.Fatalf("parsed %d properties", len(props))
	}
	if props[0].Name() != "deny_path(web, heater)" {
		t.Fatalf("props[0] = %s", props[0].Name())
	}
	if props[3].Name() != "only_endpoint(web, 1)" {
		t.Fatalf("props[3] = %s", props[3].Name())
	}
}

func TestParsePropertiesErrors(t *testing.T) {
	for _, bad := range []string{
		"deny_path(a)",           // arity
		"deny_path(a, b, c)",     // arity
		"frob(a, b)",             // unknown
		"only_endpoint(web, x)",  // non-numeric
		"only_endpoint(web, -1)", // negative
		"deny_path a, b",         // no parens
		"deny_path(, b)",         // empty arg
	} {
		if _, err := ParseProperties(bad); !errors.Is(err, ErrProperty) {
			t.Errorf("ParseProperties(%q) = %v, want ErrProperty", bad, err)
		}
	}
}

func TestCheckPropertiesReport(t *testing.T) {
	g := FromMatrix(testMatrix(t))
	r := CheckProperties(g, []Property{
		DenyPath{From: "a", To: "c"},
		DenyPath{From: "a", To: "b"},
	})
	if r.Pass() {
		t.Fatal("report should fail: a→b is an unmediated path")
	}
	if v := r.Violations(); len(v) != 1 {
		t.Fatalf("violations = %+v", v)
	}
	if !strings.Contains(r.Text(), "FAIL") {
		t.Fatalf("text = %q", r.Text())
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Platform != "minix-acm" || len(back.Findings) != 2 {
		t.Fatalf("round-tripped report = %+v", back)
	}
}

func TestAuditMatrix(t *testing.T) {
	m := core.NewMatrix()
	m.Name(1, "a").Name(2, "b")
	m.Allow(1, 2, 10, 11)
	m.Seal()
	log := machine.NewIPCLog()
	log.Record("a", "b", "mt10")

	findings := AuditMatrix(m, log)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].Check != "unused_grant(a, b, mt11)" {
		t.Fatalf("check = %q", findings[0].Check)
	}
	if findings[0].Severity != SeverityWarning {
		t.Fatalf("severity = %s", findings[0].Severity)
	}
}

func TestAuditMatrixWildcardGrant(t *testing.T) {
	m := core.NewMatrix()
	m.Name(1, "a").Name(2, "b").Name(3, "c")
	m.AllowMask(1, 2, core.MaskAll)
	m.AllowMask(1, 3, core.MaskAll)
	m.Seal()
	log := machine.NewIPCLog()
	log.Record("a", "b", "mt7") // any traffic marks the wildcard used

	findings := AuditMatrix(m, log)
	if len(findings) != 1 || findings[0].Check != "unused_grant(a, c, mt*)" {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestStructuralFindings(t *testing.T) {
	m := core.NewMatrix()
	m.Name(1, "a").Name(2, "b").Name(3, "ghost")
	m.AllowMask(1, 2, core.MaskAll)
	m.Seal()
	findings := StructuralFindings(FromMatrix(m))
	var haveWildcard, haveIsolated bool
	for _, f := range findings {
		switch f.Property {
		case "wildcard_grant":
			haveWildcard = true
		case "isolated_subject":
			if !strings.Contains(f.Check, "ghost") {
				t.Fatalf("wrong isolated subject: %s", f.Check)
			}
			haveIsolated = true
		}
		if f.Severity == SeverityViolation {
			t.Fatalf("lint must not emit violations: %+v", f)
		}
	}
	if !haveWildcard || !haveIsolated {
		t.Fatalf("findings = %+v", findings)
	}
}
